//! Differential testing of the flat-slab cache against a naive reference.
//!
//! The reference model retains the pre-flattening design — per-set `Vec`s of
//! occupants with per-set policy metadata, written for obviousness rather
//! than speed — and the suite replays seeded SplitMix64 op streams
//! (lookup / insert / invalidate / clear) through both implementations,
//! asserting identical results after every operation: hit values, evicted
//! pairs, invalidation results, occupancy, and final statistics. Every
//! replacement policy is exercised over both a set-associative and a
//! fully-associative geometry, plus a non-power-of-two set count to pin the
//! mask and modulo index paths to each other.

use std::sync::Arc;

use hypersio_cache::{CacheGeometry, FullyAssocCache, FutureOracle, PolicyKind, SetAssocCache};
use hypersio_types::SplitMix64;

const LFU_MAX: u8 = 15;

/// Naive per-set replacement metadata, mirroring the documented policy
/// semantics independently of the production enum.
enum RefPolicy {
    Lru { last_use: Vec<Vec<u64>> },
    Lfu { counters: Vec<Vec<u8>> },
    Fifo { filled_at: Vec<Vec<u64>> },
    Random { rng: SplitMix64 },
    Oracle { oracle: Arc<FutureOracle<u64>> },
}

impl RefPolicy {
    fn new(kind: &PolicyKind, sets: usize, ways: usize) -> Self {
        let grid = || vec![vec![0u64; ways]; sets];
        match kind {
            PolicyKind::Lru => RefPolicy::Lru { last_use: grid() },
            PolicyKind::Lfu => RefPolicy::Lfu {
                counters: vec![vec![0u8; ways]; sets],
            },
            PolicyKind::Fifo => RefPolicy::Fifo { filled_at: grid() },
            PolicyKind::Random { seed } => RefPolicy::Random {
                rng: SplitMix64::new(*seed),
            },
            PolicyKind::Oracle(oracle) => RefPolicy::Oracle {
                oracle: Arc::clone(oracle),
            },
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, now: u64) {
        match self {
            RefPolicy::Lru { last_use } => last_use[set][way] = now + 1,
            RefPolicy::Lfu { counters } => lfu_bump(&mut counters[set], way),
            RefPolicy::Fifo { .. } | RefPolicy::Random { .. } | RefPolicy::Oracle { .. } => {}
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, now: u64) {
        match self {
            RefPolicy::Lru { last_use } => last_use[set][way] = now + 1,
            RefPolicy::Lfu { counters } => {
                counters[set][way] = 0;
                lfu_bump(&mut counters[set], way);
            }
            RefPolicy::Fifo { filled_at } => filled_at[set][way] = now + 1,
            RefPolicy::Random { .. } | RefPolicy::Oracle { .. } => {}
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        match self {
            RefPolicy::Lru { last_use } => last_use[set][way] = 0,
            RefPolicy::Lfu { counters } => counters[set][way] = 0,
            RefPolicy::Fifo { filled_at } => filled_at[set][way] = 0,
            RefPolicy::Random { .. } | RefPolicy::Oracle { .. } => {}
        }
    }

    /// Victim way for a full set (occupants given in way order).
    fn victim(&mut self, set: usize, occupants: &[u64], now: u64) -> usize {
        match self {
            RefPolicy::Lru { last_use } => min_way(&last_use[set]),
            RefPolicy::Lfu { counters } => min_way(&counters[set]),
            RefPolicy::Fifo { filled_at } => min_way(&filled_at[set]),
            RefPolicy::Random { rng } => rng.index(occupants.len()),
            RefPolicy::Oracle { oracle } => {
                let mut best = 0usize;
                let mut best_next = 0u64;
                for (way, key) in occupants.iter().enumerate() {
                    match oracle.next_use(key, now) {
                        None => return way,
                        Some(next) if next > best_next => {
                            best = way;
                            best_next = next;
                        }
                        Some(_) => {}
                    }
                }
                best
            }
        }
    }
}

fn lfu_bump(row: &mut [u8], way: usize) {
    if row[way] == LFU_MAX {
        for c in row.iter_mut() {
            *c /= 2;
        }
    }
    row[way] += 1;
}

fn min_way<T: Ord + Copy>(row: &[T]) -> usize {
    (0..row.len()).min_by_key(|&w| row[w]).unwrap_or(0)
}

/// The retained naive cache: nested `Vec`s, one set per row, scan-in-order
/// semantics spelled out longhand.
struct RefCache {
    sets: usize,
    ways: usize,
    slots: Vec<Vec<Option<(u64, u64)>>>,
    policy: RefPolicy,
    hits: u64,
    misses: u64,
    fills: u64,
    evictions: u64,
    invalidations: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize, kind: &PolicyKind) -> Self {
        RefCache {
            sets,
            ways,
            slots: vec![vec![None; ways]; sets],
            policy: RefPolicy::new(kind, sets, ways),
            hits: 0,
            misses: 0,
            fills: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key % self.sets as u64) as usize
    }

    fn lookup(&mut self, key: u64, now: u64) -> Option<u64> {
        let set = self.set_of(key);
        for way in 0..self.ways {
            if let Some((k, v)) = self.slots[set][way] {
                if k == key {
                    self.hits += 1;
                    self.policy.on_hit(set, way, now);
                    return Some(v);
                }
            }
        }
        self.misses += 1;
        None
    }

    fn insert(&mut self, key: u64, value: u64, now: u64) -> Option<(u64, u64)> {
        let set = self.set_of(key);
        self.fills += 1;
        for way in 0..self.ways {
            if self.slots[set][way].is_some_and(|(k, _)| k == key) {
                self.policy.on_fill(set, way, now);
                self.slots[set][way] = Some((key, value));
                return None;
            }
        }
        for way in 0..self.ways {
            if self.slots[set][way].is_none() {
                self.policy.on_fill(set, way, now);
                self.slots[set][way] = Some((key, value));
                return None;
            }
        }
        let occupants: Vec<u64> = self.slots[set]
            .iter()
            .map(|slot| slot.expect("set is full").0)
            .collect();
        let way = self.policy.victim(set, &occupants, now);
        self.evictions += 1;
        self.policy.on_fill(set, way, now);
        self.slots[set][way].replace((key, value))
    }

    fn invalidate(&mut self, key: u64) -> Option<u64> {
        let set = self.set_of(key);
        for way in 0..self.ways {
            if self.slots[set][way].is_some_and(|(k, _)| k == key) {
                self.invalidations += 1;
                self.policy.on_invalidate(set, way);
                return self.slots[set][way].take().map(|(_, v)| v);
            }
        }
        None
    }

    fn clear(&mut self) {
        for set in 0..self.sets {
            for way in 0..self.ways {
                if self.slots[set][way].take().is_some() {
                    self.policy.on_invalidate(set, way);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|row| row.iter())
            .filter(|slot| slot.is_some())
            .count()
    }
}

/// Uniform driver over the two production cache shapes.
enum Subject {
    SetAssoc(SetAssocCache<u64, u64>),
    FullyAssoc(FullyAssocCache<u64, u64>),
}

impl Subject {
    fn lookup(&mut self, key: u64, now: u64) -> Option<u64> {
        match self {
            Subject::SetAssoc(c) => c.lookup(&key, now).copied(),
            Subject::FullyAssoc(c) => c.lookup(&key, now).copied(),
        }
    }

    fn insert(&mut self, key: u64, value: u64, now: u64) -> Option<(u64, u64)> {
        match self {
            Subject::SetAssoc(c) => c.insert(key, value, now),
            Subject::FullyAssoc(c) => c.insert(key, value, now),
        }
    }

    fn invalidate(&mut self, key: u64) -> Option<u64> {
        match self {
            Subject::SetAssoc(c) => c.invalidate(&key),
            Subject::FullyAssoc(c) => c.invalidate(&key),
        }
    }

    fn clear(&mut self) {
        match self {
            Subject::SetAssoc(c) => c.clear(),
            Subject::FullyAssoc(c) => c.clear(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Subject::SetAssoc(c) => c.len(),
            Subject::FullyAssoc(c) => c.len(),
        }
    }

    fn stats(&self) -> hypersio_cache::CacheStats {
        match self {
            Subject::SetAssoc(c) => *c.stats(),
            Subject::FullyAssoc(c) => *c.stats(),
        }
    }

    fn sorted_contents(&self) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = match self {
            Subject::SetAssoc(c) => c.iter().map(|(k, v)| (*k, *v)).collect(),
            Subject::FullyAssoc(c) => c.iter().map(|(k, v)| (*k, *v)).collect(),
        };
        pairs.sort_unstable();
        pairs
    }
}

/// Shapes exercised: paper DevTLB, small conflict-heavy, ragged (modulo
/// path), and the fully-associative PB.
const GEOMETRIES: &[(usize, usize, bool)] = &[
    (64, 8, false), // paper DevTLB (pow2 sets: mask path)
    (8, 2, false),  // 4 sets, heavy conflicts
    (12, 2, false), // 6 sets: non-pow2, modulo path
    (8, 8, true),   // fully-associative 8-entry PB
];

fn policies(oracle: &Arc<FutureOracle<u64>>) -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::Random { seed: 0x5eed },
        PolicyKind::Oracle(Arc::clone(oracle)),
    ]
}

/// Replays one seeded op stream through both implementations, comparing
/// after every operation.
fn run_differential(seed: u64, ops: usize) {
    // Key universe sized to force both conflicts and vacancies.
    let key_space = 96u64;
    // The oracle indexes an arbitrary fixed future-access sequence; both
    // sides share the same Arc, as the simulator does.
    let mut seq_rng = SplitMix64::new(seed ^ 0x0bad_cafe);
    let sequence: Vec<u64> = (0..4096).map(|_| seq_rng.below(key_space)).collect();
    let oracle = Arc::new(FutureOracle::from_sequence(sequence));

    for &(entries, ways, fully_assoc) in GEOMETRIES {
        for policy in policies(&oracle) {
            let name = policy.name();
            let (subject, sets) = if fully_assoc {
                (
                    Subject::FullyAssoc(FullyAssocCache::new(entries, policy.clone())),
                    1,
                )
            } else {
                (
                    Subject::SetAssoc(SetAssocCache::new(
                        CacheGeometry::new(entries, ways),
                        policy.clone(),
                    )),
                    entries / ways,
                )
            };
            let mut subject = subject;
            let mut reference =
                RefCache::new(sets, if fully_assoc { entries } else { ways }, &policy);

            let mut rng = SplitMix64::new(seed);
            for now in 0..ops as u64 {
                let ctx = format!(
                    "policy={name} entries={entries} ways={ways} fa={fully_assoc} seed={seed} op={now}"
                );
                let key = rng.below(key_space);
                match rng.below(100) {
                    0..=39 => {
                        assert_eq!(
                            subject.lookup(key, now),
                            reference.lookup(key, now),
                            "{ctx}"
                        );
                    }
                    40..=84 => {
                        let value = key * 1000 + now;
                        assert_eq!(
                            subject.insert(key, value, now),
                            reference.insert(key, value, now),
                            "{ctx}"
                        );
                    }
                    85..=96 => {
                        assert_eq!(subject.invalidate(key), reference.invalidate(key), "{ctx}");
                    }
                    _ => {
                        subject.clear();
                        reference.clear();
                    }
                }
                assert_eq!(subject.len(), reference.len(), "{ctx}");
            }

            let stats = subject.stats();
            assert_eq!(
                stats.hits(),
                reference.hits,
                "hits: {name} {entries}/{ways}"
            );
            assert_eq!(stats.misses(), reference.misses, "misses: {name}");
            assert_eq!(stats.fills(), reference.fills, "fills: {name}");
            assert_eq!(stats.evictions(), reference.evictions, "evictions: {name}");
            assert_eq!(
                stats.invalidations(),
                reference.invalidations,
                "invalidations: {name}"
            );
            let reference_contents = {
                let mut pairs: Vec<(u64, u64)> = reference
                    .slots
                    .iter()
                    .flat_map(|row| row.iter())
                    .flatten()
                    .copied()
                    .collect();
                pairs.sort_unstable();
                pairs
            };
            assert_eq!(
                subject.sorted_contents(),
                reference_contents,
                "contents: {name}"
            );
        }
    }
}

#[test]
fn flat_slab_matches_naive_reference_seed_1() {
    run_differential(1, 2000);
}

#[test]
fn flat_slab_matches_naive_reference_seed_2() {
    run_differential(0xdead_beef, 2000);
}

#[test]
fn flat_slab_matches_naive_reference_seed_3() {
    run_differential(0x1234_5678_9abc, 2000);
}
