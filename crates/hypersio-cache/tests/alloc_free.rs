//! Proves the cache hot path performs zero heap allocations in steady state.
//!
//! A counting global allocator wraps the system allocator; after the caches
//! are constructed and warmed, a burst of lookups, inserts (with evictions),
//! and invalidations across every replacement policy must leave the
//! allocation counter untouched. This pins the flat-slab design's central
//! property: victim selection consults occupants in place, with no per-
//! eviction snapshots or key clones.
//!
//! The library itself forbids `unsafe`; the allocator shim below lives in
//! the test crate only, where implementing `GlobalAlloc` requires it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hypersio_cache::{CacheGeometry, FullyAssocCache, FutureOracle, PolicyKind, SetAssocCache};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Single test (so no sibling test thread can allocate concurrently):
/// drive every policy through a steady-state burst and demand zero allocs.
#[test]
fn steady_state_cache_access_never_allocates() {
    // Construction (slab, metadata, oracle index) may allocate freely.
    let oracle = Arc::new(FutureOracle::from_sequence(
        (0..512u64).map(|i| (i * 7) % 96),
    ));
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::Random { seed: 9 },
        PolicyKind::Oracle(Arc::clone(&oracle)),
    ];

    for policy in &policies {
        let name = policy.name();
        let mut sa: SetAssocCache<u64, u64> =
            SetAssocCache::new(CacheGeometry::new(64, 8), policy.clone());
        let mut fa: FullyAssocCache<u64, u64> = FullyAssocCache::new(8, policy.clone());

        // Warm both caches past capacity so the burst below exercises the
        // full-set eviction path, not just vacancy fills.
        for k in 0..96u64 {
            sa.insert(k, k, k);
            fa.insert(k, k, k);
        }

        // The libtest harness's main thread may allocate concurrently with
        // the test thread (the counter is process-global), so take the
        // minimum over a few attempts: a genuine per-access allocation
        // would show up thousands of times in every attempt.
        let mut now = 96u64;
        let mut min_delta = u64::MAX;
        for _ in 0..5u64 {
            let before = allocations();
            for round in 0..50u64 {
                for k in 0..96u64 {
                    if sa.lookup(&k, now).is_none() {
                        sa.insert(k, k + round, now);
                    }
                    if fa.lookup(&k, now).is_none() {
                        fa.insert(k, k + round, now);
                    }
                    now += 1;
                }
                // Invalidate-then-refill keeps the vacancy path in the mix.
                sa.invalidate(&(round % 96));
                fa.invalidate(&(round % 96));
            }
            min_delta = min_delta.min(allocations() - before);
            if min_delta == 0 {
                break;
            }
        }
        assert_eq!(
            min_delta, 0,
            "policy {name}: {min_delta} heap allocations on the steady-state path"
        );
    }
}
