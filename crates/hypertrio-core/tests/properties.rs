//! Property-style tests for the HyperTRIO mechanisms.
//!
//! Same invariants as the original proptest suite, with inputs drawn from
//! the in-tree [`SplitMix64`] generator under fixed seeds so every run is
//! reproducible.

use hypersio_cache::{CacheGeometry, PartitionSpec, PolicyKind};
use hypersio_types::{Did, GIova, HPa, PageSize, Sid, SplitMix64};
use hypertrio_core::{DevTlb, PendingTranslationBuffer, SidPredictor, TlbEntry};

const CASES: usize = 64;

#[test]
fn ptb_occupancy_is_bounded_and_conserved() {
    let mut rng = SplitMix64::new(0x5001);
    for _ in 0..CASES {
        let ops: Vec<bool> = (0..rng.range_inclusive(1, 399))
            .map(|_| rng.below(2) == 1)
            .collect();
        let capacity = rng.range_inclusive(1, 63) as usize;
        let mut ptb = PendingTranslationBuffer::new(capacity);
        let mut live = Vec::new();
        for &alloc in &ops {
            if alloc {
                match ptb.try_allocate() {
                    Some(token) => live.push(token),
                    None => assert!(ptb.is_full()),
                }
            } else if let Some(token) = live.pop() {
                ptb.complete(token);
            }
            assert!(ptb.occupancy() <= capacity);
            assert_eq!(ptb.occupancy(), live.len());
        }
        let stats = ptb.stats();
        assert_eq!(stats.allocated, stats.completed + live.len() as u64);
        assert!(stats.peak_occupancy <= capacity);
    }
}

#[test]
fn predictor_is_exact_on_periodic_arrivals() {
    let mut rng = SplitMix64::new(0x5002);
    for _ in 0..CASES {
        let tenants = rng.range_inclusive(2, 31) as u32;
        let history = rng.range_inclusive(1, 15) as usize;
        let probe = rng.below(32) as u32;
        // Round-robin arrivals: the SID `history` steps after `s` is
        // always (s + history) mod tenants once training has seen a full
        // cycle.
        let mut p = SidPredictor::new(history);
        // Enough rounds that every tenant has appeared at the training
        // depth at least once, whatever the history length.
        for _ in 0..(history as u32 + 4) {
            for t in 0..tenants {
                p.observe(Sid::new(t));
            }
        }
        let probe = probe % tenants;
        let expected = (probe + history as u32) % tenants;
        assert_eq!(p.predict(Sid::new(probe)), Some(Sid::new(expected)));
    }
}

#[test]
fn devtlb_translation_preserves_offsets() {
    let mut rng = SplitMix64::new(0x5003);
    for _ in 0..CASES {
        let offset = rng.below(0x20_0000);
        let hpa_frame = rng.range_inclusive(1, (1 << 20) - 1);
        let mut tlb = DevTlb::new(
            CacheGeometry::new(64, 8),
            PartitionSpec::unified(),
            PolicyKind::Lru,
        );
        let entry = TlbEntry {
            hpa_base: HPa::new(hpa_frame << 21),
            size: PageSize::Size2M,
        };
        let iova = GIova::new(0xbbe0_0000);
        tlb.insert(Sid::new(0), Did::new(0), iova, entry, 0);
        let probe = GIova::new((iova.raw() & !0x1f_ffff) + offset);
        let hit = tlb.lookup(Sid::new(0), Did::new(0), probe, 1).unwrap();
        assert_eq!(hit.translate(probe).raw(), (hpa_frame << 21) + offset);
    }
}

#[test]
fn devtlb_partitioning_never_loses_correctness() {
    let mut rng = SplitMix64::new(0x5004);
    for _ in 0..CASES {
        let inserts: Vec<(u32, u64)> = (0..rng.range_inclusive(1, 199))
            .map(|_| (rng.below(16) as u32, rng.below(64)))
            .collect();
        let partitions = [1usize, 2, 4, 8][rng.index(4)];
        // Whatever the partition count, a hit must always return the value
        // inserted by the same tenant for the same page (isolation is a
        // performance property; correctness must be unconditional).
        let mut tlb = DevTlb::new(
            CacheGeometry::new(64, 8),
            PartitionSpec::new(partitions),
            PolicyKind::Lfu,
        );
        for (i, &(tenant, page)) in inserts.iter().enumerate() {
            let iova = GIova::new(0xbbe0_0000 + page * 0x20_0000);
            let entry = TlbEntry {
                // Encode the owner in the frame so aliasing is detectable.
                hpa_base: HPa::new(((tenant as u64) << 40) | (page << 21)),
                size: PageSize::Size2M,
            };
            tlb.insert(Sid::new(tenant), Did::new(tenant), iova, entry, i as u64);
        }
        for &(tenant, page) in &inserts {
            let iova = GIova::new(0xbbe0_0000 + page * 0x20_0000);
            if let Some(hit) = tlb.lookup(Sid::new(tenant), Did::new(tenant), iova, 10_000) {
                assert_eq!(hit.hpa_base.raw() >> 40, tenant as u64);
                assert_eq!((hit.hpa_base.raw() >> 21) & 0xff, page);
            }
        }
    }
}

#[test]
fn predictor_history_resize_is_safe() {
    let mut rng = SplitMix64::new(0x5005);
    for _ in 0..CASES {
        let lens: Vec<usize> = (0..rng.range_inclusive(1, 19))
            .map(|_| rng.range_inclusive(1, 63) as usize)
            .collect();
        let arrivals: Vec<u32> = (0..rng.range_inclusive(1, 199))
            .map(|_| rng.below(8) as u32)
            .collect();
        let mut p = SidPredictor::new(lens[0]);
        let mut li = 0;
        for (i, &sid) in arrivals.iter().enumerate() {
            if i % 17 == 16 {
                li = (li + 1) % lens.len();
                p.set_history_len(lens[li]);
            }
            p.observe(Sid::new(sid));
            let _ = p.predict(Sid::new(sid));
        }
        let (asked, had) = p.coverage();
        assert!(had <= asked);
    }
}
