//! Property-based tests for the HyperTRIO mechanisms.

use hypersio_cache::{CacheGeometry, PartitionSpec, PolicyKind};
use hypersio_types::{Did, GIova, HPa, PageSize, Sid};
use hypertrio_core::{DevTlb, PendingTranslationBuffer, SidPredictor, TlbEntry};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ptb_occupancy_is_bounded_and_conserved(
        ops in prop::collection::vec(prop::bool::ANY, 1..400),
        capacity in 1usize..64,
    ) {
        let mut ptb = PendingTranslationBuffer::new(capacity);
        let mut live = Vec::new();
        for &alloc in &ops {
            if alloc {
                match ptb.try_allocate() {
                    Some(token) => live.push(token),
                    None => prop_assert!(ptb.is_full()),
                }
            } else if let Some(token) = live.pop() {
                ptb.complete(token);
            }
            prop_assert!(ptb.occupancy() <= capacity);
            prop_assert_eq!(ptb.occupancy(), live.len());
        }
        let stats = ptb.stats();
        prop_assert_eq!(stats.allocated, stats.completed + live.len() as u64);
        prop_assert!(stats.peak_occupancy <= capacity);
    }

    #[test]
    fn predictor_is_exact_on_periodic_arrivals(
        tenants in 2u32..32,
        history in 1usize..16,
        probe in 0u32..32,
    ) {
        // Round-robin arrivals: the SID `history` steps after `s` is
        // always (s + history) mod tenants once training has seen a full
        // cycle.
        let mut p = SidPredictor::new(history);
        // Enough rounds that every tenant has appeared at the training
        // depth at least once, whatever the history length.
        for _ in 0..(history as u32 + 4) {
            for t in 0..tenants {
                p.observe(Sid::new(t));
            }
        }
        let probe = probe % tenants;
        let expected = (probe + history as u32) % tenants;
        prop_assert_eq!(p.predict(Sid::new(probe)), Some(Sid::new(expected)));
    }

    #[test]
    fn devtlb_translation_preserves_offsets(
        offset in 0u64..0x20_0000,
        hpa_frame in 1u64..1 << 20,
    ) {
        let mut tlb = DevTlb::new(
            CacheGeometry::new(64, 8),
            PartitionSpec::unified(),
            PolicyKind::Lru,
        );
        let entry = TlbEntry {
            hpa_base: HPa::new(hpa_frame << 21),
            size: PageSize::Size2M,
        };
        let iova = GIova::new(0xbbe0_0000);
        tlb.insert(Sid::new(0), Did::new(0), iova, entry, 0);
        let probe = GIova::new((iova.raw() & !0x1f_ffff) + offset);
        let hit = tlb.lookup(Sid::new(0), Did::new(0), probe, 1).unwrap();
        prop_assert_eq!(hit.translate(probe).raw(), (hpa_frame << 21) + offset);
    }

    #[test]
    fn devtlb_partitioning_never_loses_correctness(
        inserts in prop::collection::vec((0u32..16, 0u64..64), 1..200),
        partitions in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        // Whatever the partition count, a hit must always return the value
        // inserted by the same tenant for the same page (isolation is a
        // performance property; correctness must be unconditional).
        let mut tlb = DevTlb::new(
            CacheGeometry::new(64, 8),
            PartitionSpec::new(partitions),
            PolicyKind::Lfu,
        );
        for (i, &(tenant, page)) in inserts.iter().enumerate() {
            let iova = GIova::new(0xbbe0_0000 + page * 0x20_0000);
            let entry = TlbEntry {
                // Encode the owner in the frame so aliasing is detectable.
                hpa_base: HPa::new(((tenant as u64) << 40) | (page << 21)),
                size: PageSize::Size2M,
            };
            tlb.insert(Sid::new(tenant), Did::new(tenant), iova, entry, i as u64);
        }
        for &(tenant, page) in &inserts {
            let iova = GIova::new(0xbbe0_0000 + page * 0x20_0000);
            if let Some(hit) = tlb.lookup(Sid::new(tenant), Did::new(tenant), iova, 10_000) {
                prop_assert_eq!(hit.hpa_base.raw() >> 40, tenant as u64);
                prop_assert_eq!((hit.hpa_base.raw() >> 21) & 0xff, page);
            }
        }
    }

    #[test]
    fn predictor_history_resize_is_safe(
        lens in prop::collection::vec(1usize..64, 1..20),
        arrivals in prop::collection::vec(0u32..8, 1..200),
    ) {
        let mut p = SidPredictor::new(lens[0]);
        let mut li = 0;
        for (i, &sid) in arrivals.iter().enumerate() {
            if i % 17 == 16 {
                li = (li + 1) % lens.len();
                p.set_history_len(lens[li]);
            }
            p.observe(Sid::new(sid));
            let _ = p.predict(Sid::new(sid));
        }
        let (asked, had) = p.coverage();
        prop_assert!(had <= asked);
    }
}
