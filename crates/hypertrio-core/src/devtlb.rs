//! The device-side translation cache, with HyperTRIO's SID partitioning.

use std::fmt;

use hypersio_cache::{
    CacheGeometry, CacheKey, CacheStats, OracleKey, PartitionSpec, PartitionedCache, PolicyKind,
    WordCodec, WordReader,
};
use hypersio_types::{Did, GIova, HPa, PageSize, Sid};

/// One cached device-side translation: the host frame and its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbEntry {
    /// Base host-physical address of the mapped frame.
    pub hpa_base: HPa,
    /// Size of the mapped page.
    pub size: PageSize,
}

impl TlbEntry {
    /// Applies the entry to a full gIOVA, producing the translated address.
    pub fn translate(&self, iova: GIova) -> HPa {
        HPa::new(self.hpa_base.raw() + iova.page_offset(self.size))
    }
}

/// A DevTLB tag: tenant, virtual page number, and page granule.
///
/// The virtual page number doubles as the set selector, so tenants with
/// identical driver layouts (the §IV-D observation) collide in the same
/// rows of an unpartitioned DevTLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevTlbKey {
    /// The owning tenant's domain ID.
    pub did: Did,
    /// `iova >> size.shift()`.
    pub vpn: u64,
    /// Page granule of the cached mapping.
    pub size: PageSize,
}

impl DevTlbKey {
    /// Builds the key for the page of `iova` at granule `size`.
    pub fn new(did: Did, iova: GIova, size: PageSize) -> Self {
        DevTlbKey {
            did,
            vpn: iova.raw() >> size.shift(),
            size,
        }
    }
}

impl CacheKey for DevTlbKey {
    fn set_selector(&self) -> u64 {
        self.vpn
    }
}

impl WordCodec for TlbEntry {
    const WORDS: usize = 2;

    fn encode_words(&self, out: &mut Vec<u64>) {
        self.hpa_base.encode_words(out);
        self.size.encode_words(out);
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        let (hpa, size) = words.split_at_checked(1)?;
        Some(TlbEntry {
            hpa_base: HPa::decode_words(hpa)?,
            size: PageSize::decode_words(size)?,
        })
    }
}

impl WordCodec for DevTlbKey {
    const WORDS: usize = 3;

    fn encode_words(&self, out: &mut Vec<u64>) {
        self.did.encode_words(out);
        out.push(self.vpn);
        self.size.encode_words(out);
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        let (did, rest) = words.split_at_checked(1)?;
        let (vpn, size) = rest.split_at_checked(1)?;
        Some(DevTlbKey {
            did: Did::decode_words(did)?,
            vpn: u64::decode_words(vpn)?,
            size: PageSize::decode_words(size)?,
        })
    }
}

impl OracleKey for DevTlbKey {
    fn oracle_code(&self) -> u64 {
        // did (20 bits) | vpn (42 bits) | granule level (2 bits) — injective
        // for the workloads' address ranges.
        ((self.did.raw() as u64) << 44)
            | ((self.vpn & ((1 << 42) - 1)) << 2)
            | self.size.level() as u64
    }
}

/// The Device TLB ("DevTLB"), optionally partitioned by SID.
///
/// Lookups probe the 2 MB granule first, then 4 KB (hardware probes both
/// tag arrays in parallel); exactly one hit or one miss is recorded per
/// lookup.
///
/// # Examples
///
/// ```
/// use hypersio_cache::{CacheGeometry, PartitionSpec, PolicyKind};
/// use hypersio_types::{Did, GIova, HPa, PageSize, Sid};
/// use hypertrio_core::{DevTlb, TlbEntry};
///
/// let mut tlb = DevTlb::new(
///     CacheGeometry::new(64, 8),
///     PartitionSpec::new(8),
///     PolicyKind::Lfu,
/// );
/// let entry = TlbEntry { hpa_base: HPa::new(0x10_0000_0000), size: PageSize::Size2M };
/// tlb.insert(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), entry, 0);
/// let hit = tlb.lookup(Sid::new(0), Did::new(0), GIova::new(0xbbe0_1234), 1).unwrap();
/// assert_eq!(hit.translate(GIova::new(0xbbe0_1234)).raw(), 0x10_0000_1234);
/// ```
pub struct DevTlb {
    cache: PartitionedCache<DevTlbKey, TlbEntry>,
}

impl DevTlb {
    /// Creates a DevTLB.
    ///
    /// The paper's Base design is `CacheGeometry::new(64, 8)` with a unified
    /// partition and LFU; HyperTRIO partitions the same geometry 8 ways
    /// (Table IV).
    ///
    /// # Panics
    ///
    /// Panics if the partition count does not divide the number of sets.
    pub fn new(geometry: CacheGeometry, partitions: PartitionSpec, policy: PolicyKind) -> Self {
        DevTlb {
            cache: PartitionedCache::new(geometry, partitions, policy),
        }
    }

    /// Returns the geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.cache.geometry()
    }

    /// Returns the partition spec.
    pub fn partitions(&self) -> PartitionSpec {
        self.cache.spec()
    }

    /// Looks up the translation for `iova`, probing 2 MB then 4 KB granules.
    ///
    /// Records exactly one hit or one miss in the statistics. The two
    /// granule rows are probed in one fused pass (hardware probes both tag
    /// arrays in parallel); hit/miss accounting is identical to a 2 MB peek
    /// followed by a single policy-visible lookup.
    pub fn lookup(&mut self, sid: Sid, did: Did, iova: GIova, now: u64) -> Option<TlbEntry> {
        let key_2m = DevTlbKey::new(did, iova, PageSize::Size2M);
        let key_4k = DevTlbKey::new(did, iova, PageSize::Size4K);
        self.cache.lookup_fused(sid, &key_2m, &key_4k, now).copied()
    }

    /// Probes a batch of gIOVAs in request order, exactly as sequential
    /// [`Self::lookup`] calls at `now`, `now + 1`, … would — one recorded
    /// hit or miss and one policy update per element.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != iovas.len()`.
    pub fn lookup_batch(
        &mut self,
        sid: Sid,
        did: Did,
        iovas: &[GIova],
        now: u64,
        out: &mut [Option<TlbEntry>],
    ) {
        assert_eq!(
            iovas.len(),
            out.len(),
            "lookup_batch buffer length mismatch"
        );
        for (i, (&iova, slot)) in iovas.iter().zip(out.iter_mut()).enumerate() {
            *slot = self.lookup(sid, did, iova, now + i as u64);
        }
    }

    /// Inserts a translation completed by the IOMMU.
    ///
    /// Returns the evicted entry, if any.
    pub fn insert(
        &mut self,
        sid: Sid,
        did: Did,
        iova: GIova,
        entry: TlbEntry,
        now: u64,
    ) -> Option<(DevTlbKey, TlbEntry)> {
        let key = DevTlbKey::new(did, iova, entry.size);
        self.cache.insert(sid, key, entry, now)
    }

    /// Invalidates the translation for (`did`, `iova`) at granule `size`.
    pub fn invalidate(&mut self, sid: Sid, did: Did, iova: GIova, size: PageSize) -> bool {
        self.cache
            .invalidate(sid, &DevTlbKey::new(did, iova, size))
            .is_some()
    }

    /// Invalidates every entry belonging to `did` (a per-domain shootdown,
    /// as an IOTLB invalidation command addressed to one DID would).
    /// Returns the number of entries removed.
    pub fn invalidate_did(&mut self, did: Did) -> usize {
        self.cache.invalidate_matching(|k| k.did == did)
    }

    /// Removes every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Returns accumulated access statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Returns the number of occupied entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns true if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Appends the DevTLB's full mutable state (entries, replacement
    /// metadata, statistics) to a checkpoint word stream.
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        self.cache.snapshot_words(out);
    }

    /// Restores the state written by [`DevTlb::snapshot_words`] into this
    /// identically configured DevTLB. Returns `None` on a corrupt stream.
    pub fn restore_words(&mut self, r: &mut WordReader<'_>) -> Option<()> {
        self.cache.restore_words(r)
    }
}

impl fmt::Debug for DevTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DevTlb")
            .field("geometry", &self.cache.geometry())
            .field("partitions", &self.cache.spec())
            .field("occupied", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_2m(hpa: u64) -> TlbEntry {
        TlbEntry {
            hpa_base: HPa::new(hpa),
            size: PageSize::Size2M,
        }
    }

    fn entry_4k(hpa: u64) -> TlbEntry {
        TlbEntry {
            hpa_base: HPa::new(hpa),
            size: PageSize::Size4K,
        }
    }

    fn base_tlb() -> DevTlb {
        DevTlb::new(
            CacheGeometry::new(64, 8),
            PartitionSpec::unified(),
            PolicyKind::Lfu,
        )
    }

    #[test]
    fn hit_covers_whole_huge_page() {
        let mut tlb = base_tlb();
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0xbbe0_0000),
            entry_2m(0x1000_0000),
            0,
        );
        // Any offset inside the 2 MB page hits.
        let hit = tlb
            .lookup(Sid::new(0), Did::new(0), GIova::new(0xbbff_ffff), 1)
            .unwrap();
        assert_eq!(hit.translate(GIova::new(0xbbff_ffff)).raw(), 0x101f_ffff);
        assert_eq!(tlb.stats().hits(), 1);
    }

    #[test]
    fn four_kb_entries_do_not_cover_neighbours() {
        let mut tlb = base_tlb();
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x3480_0000),
            entry_4k(0x5000),
            0,
        );
        assert!(tlb
            .lookup(Sid::new(0), Did::new(0), GIova::new(0x3480_0fff), 1)
            .is_some());
        assert!(tlb
            .lookup(Sid::new(0), Did::new(0), GIova::new(0x3480_1000), 2)
            .is_none());
        assert_eq!(tlb.stats().misses(), 1);
    }

    #[test]
    fn one_access_one_stat() {
        let mut tlb = base_tlb();
        tlb.lookup(Sid::new(0), Did::new(0), GIova::new(0x1000), 0);
        assert_eq!(tlb.stats().accesses(), 1);
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x1000),
            entry_4k(0x1),
            1,
        );
        tlb.lookup(Sid::new(0), Did::new(0), GIova::new(0x1000), 2);
        assert_eq!(tlb.stats().accesses(), 2);
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 1);
    }

    #[test]
    fn tenants_do_not_alias_even_unpartitioned() {
        let mut tlb = base_tlb();
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0xbbe0_0000),
            entry_2m(0xa0_0000),
            0,
        );
        assert!(tlb
            .lookup(Sid::new(1), Did::new(1), GIova::new(0xbbe0_0000), 1)
            .is_none());
    }

    #[test]
    fn partitioning_protects_quiet_tenant() {
        let mut tlb = DevTlb::new(
            CacheGeometry::new(64, 8),
            PartitionSpec::new(8),
            PolicyKind::Lfu,
        );
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0xbbe0_0000),
            entry_2m(0x1),
            0,
        );
        // Tenant 1 floods its own partition with hundreds of pages.
        for i in 0..500u64 {
            tlb.insert(
                Sid::new(1),
                Did::new(1),
                GIova::new(i << 21),
                entry_2m(i),
                1 + i,
            );
        }
        assert!(
            tlb.lookup(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 1000)
                .is_some(),
            "partitioned DevTLB must isolate tenant 0"
        );
    }

    #[test]
    fn unpartitioned_tlb_lets_flood_evict() {
        let mut tlb = base_tlb();
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0xbbe0_0000),
            entry_2m(0x1),
            0,
        );
        for i in 0..5000u64 {
            tlb.insert(
                Sid::new(1),
                Did::new(1),
                GIova::new(i << 21),
                entry_2m(i),
                1 + i,
            );
        }
        assert!(
            tlb.lookup(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 9000)
                .is_none(),
            "Base DevTLB thrashes under a flood"
        );
    }

    #[test]
    fn invalidate_and_clear() {
        let mut tlb = base_tlb();
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x1000),
            entry_4k(0x9),
            0,
        );
        assert!(tlb.invalidate(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x1000),
            PageSize::Size4K
        ));
        assert!(!tlb.invalidate(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x1000),
            PageSize::Size4K
        ));
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x2000),
            entry_4k(0x9),
            1,
        );
        tlb.clear();
        assert!(tlb.is_empty());
    }

    #[test]
    fn invalidate_did_removes_only_that_tenant() {
        let mut tlb = base_tlb();
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0x1000),
            entry_4k(0x1),
            0,
        );
        tlb.insert(
            Sid::new(0),
            Did::new(0),
            GIova::new(0xbbe0_0000),
            entry_2m(0x2),
            1,
        );
        tlb.insert(
            Sid::new(1),
            Did::new(1),
            GIova::new(0x1000),
            entry_4k(0x3),
            2,
        );
        assert_eq!(tlb.invalidate_did(Did::new(0)), 2);
        assert!(tlb
            .lookup(Sid::new(0), Did::new(0), GIova::new(0x1000), 3)
            .is_none());
        assert!(tlb
            .lookup(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 4)
            .is_none());
        assert!(tlb
            .lookup(Sid::new(1), Did::new(1), GIova::new(0x1000), 5)
            .is_some());
        assert_eq!(tlb.invalidate_did(Did::new(0)), 0);
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let mut batched = base_tlb();
        let mut scalar = base_tlb();
        for tlb in [&mut batched, &mut scalar] {
            tlb.insert(
                Sid::new(0),
                Did::new(0),
                GIova::new(0xbbe0_0000),
                entry_2m(0x1000_0000),
                0,
            );
            tlb.insert(
                Sid::new(0),
                Did::new(0),
                GIova::new(0x3000),
                entry_4k(0x7000),
                1,
            );
        }
        let iovas = [
            GIova::new(0xbbe1_2345), // 2M hit
            GIova::new(0x3fff),      // 4K hit
            GIova::new(0x9000),      // miss
        ];
        let mut out = [None; 3];
        batched.lookup_batch(Sid::new(0), Did::new(0), &iovas, 10, &mut out);
        for (i, &iova) in iovas.iter().enumerate() {
            let want = scalar.lookup(Sid::new(0), Did::new(0), iova, 10 + i as u64);
            assert_eq!(out[i], want, "iova {i}");
        }
        assert_eq!(batched.stats().hits(), scalar.stats().hits());
        assert_eq!(batched.stats().misses(), scalar.stats().misses());
    }

    #[test]
    fn oracle_codes_distinguish_granules_and_tenants() {
        let a = DevTlbKey::new(Did::new(0), GIova::new(0xbbe0_0000), PageSize::Size2M);
        let b = DevTlbKey::new(Did::new(0), GIova::new(0xbbe0_0000), PageSize::Size4K);
        let c = DevTlbKey::new(Did::new(1), GIova::new(0xbbe0_0000), PageSize::Size2M);
        assert_ne!(a.oracle_code(), b.oracle_code());
        assert_ne!(a.oracle_code(), c.oracle_code());
    }

    #[test]
    fn entry_translate_preserves_offset() {
        let e = entry_2m(0x4000_0000);
        assert_eq!(e.translate(GIova::new(0xbbe1_2345)).raw(), 0x4001_2345);
    }
}
