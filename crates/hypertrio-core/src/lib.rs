//! The HyperTRIO architecture (the paper's primary contribution).
//!
//! Three device/chipset mechanisms remove the gIOVA → hPA translation
//! bottleneck for devices shared by up to ~1024 tenants (§III):
//!
//! - [`PendingTranslationBuffer`] — tracks many in-flight translations with
//!   out-of-order completion, so a two-dimensional page-table walk for one
//!   tenant does not head-of-line-block every other tenant. Packets that
//!   cannot allocate an entry are dropped and retried at the next arrival.
//! - [`DevTlb`] — the device-side translation cache, with HyperTRIO's
//!   partition-tag scheme: each row is usable only by the SID (or SID
//!   group) whose tag it carries, so a noisy tenant cannot evict a quiet
//!   tenant's translations.
//! - [`PrefetchUnit`] — an 8-entry shared Prefetch Buffer plus a
//!   SID-predictor trained on the arrival history: when tenant *s* is
//!   active now, the tenant predicted to be active `history_len` requests
//!   from now has its two most-recent gIOVAs fetched from the per-DID
//!   history in main memory and translated ahead of time.
//!
//! [`TranslationConfig`] packages all of it, with the exact Base and
//! HyperTRIO presets of the paper's Table IV.
//!
//! # Examples
//!
//! ```
//! use hypertrio_core::TranslationConfig;
//!
//! let base = TranslationConfig::base();
//! assert_eq!(base.ptb_entries, 1);
//! assert!(base.prefetch.is_none());
//!
//! let ht = TranslationConfig::hypertrio();
//! assert_eq!(ht.ptb_entries, 32);
//! assert_eq!(ht.devtlb_partitions.partitions(), 8);
//! assert_eq!(ht.prefetch.as_ref().unwrap().history_len, 48);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod devtlb;
mod prefetch;
mod ptb;

pub use config::{PrefetchConfig, TranslationConfig};
pub use devtlb::{DevTlb, DevTlbKey, TlbEntry};
pub use prefetch::{IovaHistoryReader, PrefetchRequest, PrefetchUnit, SidPredictor};
pub use ptb::{PendingTranslationBuffer, PtbStats, PtbToken};
