//! Configuration presets: the paper's Table IV, plus a builder for sweeps.

use std::fmt;

use hypersio_cache::{CacheGeometry, PartitionSpec, PolicyKind};
use hypersio_mem::WalkCacheConfig;

/// Prefetching-scheme parameters (Table IV, bottom row).
///
/// # Examples
///
/// ```
/// use hypertrio_core::PrefetchConfig;
///
/// let pf = PrefetchConfig::paper();
/// assert_eq!(pf.buffer_entries, 8);
/// assert_eq!(pf.history_len, 48);
/// assert_eq!(pf.pages_per_prefetch, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Prefetch Buffer entries (fully associative).
    pub buffer_entries: usize,
    /// SID-predictor history length ("48-access stride").
    pub history_len: usize,
    /// Most-recent gIOVAs fetched per prefetch ("2 pages history/tenant").
    pub pages_per_prefetch: usize,
}

impl PrefetchConfig {
    /// The paper's tuned configuration: 8-entry buffer, 48-access history,
    /// 2 pages per tenant.
    pub fn paper() -> Self {
        PrefetchConfig {
            buffer_entries: 8,
            history_len: 48,
            pages_per_prefetch: 2,
        }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::paper()
    }
}

/// Full device/chipset translation configuration (one column of Table IV).
///
/// Construct with [`TranslationConfig::base`] or
/// [`TranslationConfig::hypertrio`] and tweak fields for sensitivity
/// studies — every Fig 11/12 experiment is a variation of these presets.
///
/// # Examples
///
/// ```
/// use hypersio_cache::PartitionSpec;
/// use hypertrio_core::TranslationConfig;
///
/// // Fig 12b: partitioned design with an 8-entry PTB.
/// let cfg = TranslationConfig::hypertrio()
///     .with_ptb_entries(8)
///     .without_prefetch();
/// assert_eq!(cfg.ptb_entries, 8);
/// assert!(cfg.prefetch.is_none());
/// assert_eq!(cfg.devtlb_partitions, PartitionSpec::new(8));
/// ```
#[derive(Debug, Clone)]
pub struct TranslationConfig {
    /// Human-readable configuration name for reports.
    pub name: String,
    /// DevTLB geometry (Table IV: 64 entries, 8 ways for both designs).
    pub devtlb_geometry: CacheGeometry,
    /// DevTLB partitioning (Base: 1; HyperTRIO: 8).
    pub devtlb_partitions: PartitionSpec,
    /// DevTLB replacement policy (both designs use LFU).
    pub devtlb_policy: PolicyKind,
    /// Pending Translation Buffer entries (Base: 1; HyperTRIO: 32).
    pub ptb_entries: usize,
    /// IOMMU walk-cache geometry and partitioning.
    pub walk_caches: WalkCacheConfig,
    /// Prefetching scheme; `None` disables it (the Base design).
    pub prefetch: Option<PrefetchConfig>,
}

impl TranslationConfig {
    /// Table IV "Base": single-entry PTB, unified 64-entry/8-way LFU
    /// DevTLB, unified walk caches, no prefetching.
    pub fn base() -> Self {
        TranslationConfig {
            name: "Base".to_string(),
            devtlb_geometry: CacheGeometry::new(64, 8),
            devtlb_partitions: PartitionSpec::unified(),
            devtlb_policy: PolicyKind::Lfu,
            ptb_entries: 1,
            walk_caches: WalkCacheConfig::paper_base(),
            prefetch: None,
        }
    }

    /// Table IV "HyperTRIO": 32-entry PTB, 8-partition DevTLB,
    /// 32/64-partition walk caches, 8-entry prefetch buffer with 48-access
    /// history and 2 pages per tenant.
    pub fn hypertrio() -> Self {
        TranslationConfig {
            name: "HyperTRIO".to_string(),
            devtlb_partitions: PartitionSpec::new(8),
            ptb_entries: 32,
            walk_caches: WalkCacheConfig::paper_hypertrio(),
            prefetch: Some(PrefetchConfig::paper()),
            ..TranslationConfig::base()
        }
    }

    /// Renames the configuration (for experiment legends).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the DevTLB geometry (Fig 11a sweeps 64 vs 1024 entries).
    ///
    /// # Panics
    ///
    /// Panics (at cache construction) if the partition count no longer
    /// divides the set count.
    pub fn with_devtlb_geometry(mut self, geometry: CacheGeometry) -> Self {
        self.devtlb_geometry = geometry;
        self
    }

    /// Replaces the DevTLB partitioning (Fig 12a).
    pub fn with_devtlb_partitions(mut self, partitions: PartitionSpec) -> Self {
        self.devtlb_partitions = partitions;
        self
    }

    /// Replaces the DevTLB replacement policy (Fig 11b).
    pub fn with_devtlb_policy(mut self, policy: PolicyKind) -> Self {
        self.devtlb_policy = policy;
        self
    }

    /// Replaces the PTB size (Fig 12b sweeps 1/8/32).
    pub fn with_ptb_entries(mut self, entries: usize) -> Self {
        self.ptb_entries = entries;
        self
    }

    /// Replaces the walk-cache configuration.
    pub fn with_walk_caches(mut self, walk_caches: WalkCacheConfig) -> Self {
        self.walk_caches = walk_caches;
        self
    }

    /// Enables prefetching with the given parameters (Fig 12c).
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// Disables prefetching.
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = None;
        self
    }
}

impl fmt::Display for TranslationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: DevTLB {} ({}, {}), PTB {}, L2 {} {}, L3 {} {}, prefetch {}",
            self.name,
            self.devtlb_geometry,
            self.devtlb_partitions,
            self.devtlb_policy.name(),
            self.ptb_entries,
            self.walk_caches.l2_geometry,
            self.walk_caches.l2_partitions,
            self.walk_caches.l3_geometry,
            self.walk_caches.l3_partitions,
            match &self.prefetch {
                Some(pf) => format!(
                    "{}e/{}hist/{}pg",
                    pf.buffer_entries, pf.history_len, pf.pages_per_prefetch
                ),
                None => "off".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table_iv() {
        let cfg = TranslationConfig::base();
        assert_eq!(cfg.ptb_entries, 1);
        assert_eq!(cfg.devtlb_geometry, CacheGeometry::new(64, 8));
        assert!(cfg.devtlb_partitions.is_unified());
        assert!(cfg.walk_caches.l2_partitions.is_unified());
        assert!(cfg.walk_caches.l3_partitions.is_unified());
        assert!(cfg.prefetch.is_none());
        assert_eq!(cfg.devtlb_policy.name(), "LFU");
    }

    #[test]
    fn hypertrio_matches_table_iv() {
        let cfg = TranslationConfig::hypertrio();
        assert_eq!(cfg.ptb_entries, 32);
        assert_eq!(cfg.devtlb_geometry, CacheGeometry::new(64, 8));
        assert_eq!(cfg.devtlb_partitions.partitions(), 8);
        assert_eq!(cfg.walk_caches.l2_partitions.partitions(), 32);
        assert_eq!(cfg.walk_caches.l3_partitions.partitions(), 64);
        let pf = cfg.prefetch.unwrap();
        assert_eq!(pf, PrefetchConfig::paper());
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = TranslationConfig::base()
            .with_name("big-tlb")
            .with_devtlb_geometry(CacheGeometry::new(1024, 8))
            .with_ptb_entries(8)
            .with_prefetch(PrefetchConfig {
                buffer_entries: 16,
                history_len: 24,
                pages_per_prefetch: 1,
            });
        assert_eq!(cfg.name, "big-tlb");
        assert_eq!(cfg.devtlb_geometry.entries(), 1024);
        assert_eq!(cfg.ptb_entries, 8);
        assert_eq!(cfg.prefetch.unwrap().history_len, 24);
    }

    #[test]
    fn display_summarises_config() {
        let s = TranslationConfig::hypertrio().to_string();
        assert!(s.contains("HyperTRIO"));
        assert!(s.contains("PTB 32"));
        assert!(s.contains("8e/48hist/2pg"));
        let s = TranslationConfig::base().to_string();
        assert!(s.contains("prefetch off"));
    }
}
