//! The translation prefetching scheme (§III): Prefetch Buffer,
//! SID-predictor, and per-DID IOVA history reader.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use hypersio_cache::{CacheStats, FullyAssocCache, PolicyKind, WordReader};
use hypersio_types::fxhash::FxBuildHasher;
use hypersio_types::{Did, GIova, Sid};

use crate::devtlb::{DevTlbKey, TlbEntry};

/// A prefetch decision: which tenant to prefetch for next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// The predicted next Source ID.
    pub sid: Sid,
}

/// The SID-predictor: a direct-mapped table from the currently active SID
/// to the SID predicted to be active `history_len` requests later.
///
/// Hardware load balancing gives each tenant a regular share of the request
/// stream (§III), so "who comes `H` requests after tenant *s*" is highly
/// stable (for RR arbitration it is exactly periodic). The predictor learns
/// it online: when a request from SID *t* arrives, the SID seen `H` requests
/// earlier is recorded as predicting *t*. Predicting `H` ahead gives the
/// prefetch enough lead time to hide the memory latency of the history
/// fetch and translation.
///
/// # Examples
///
/// ```
/// use hypersio_types::Sid;
/// use hypertrio_core::SidPredictor;
///
/// let mut p = SidPredictor::new(2);
/// // Round-robin arrivals 0,1,2,0,1,2...
/// for i in 0..12u32 {
///     p.observe(Sid::new(i % 3));
/// }
/// // Two steps after tenant 0 comes tenant 2.
/// assert_eq!(p.predict(Sid::new(0)), Some(Sid::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct SidPredictor {
    history_len: usize,
    window: VecDeque<Sid>,
    /// Learned `predecessor -> successor` mappings. Probed and updated once
    /// per observed request, so it uses the cheap Fx hasher (SIDs are
    /// attacker-free small integers) and is never iterated — behaviour is
    /// independent of hash order.
    table: HashMap<Sid, Sid, FxBuildHasher>,
    predictions: u64,
    hits_possible: u64,
}

impl SidPredictor {
    /// Creates a predictor with the given history length (the paper finds
    /// 48 optimal for its system, Table IV).
    ///
    /// # Panics
    ///
    /// Panics if `history_len` is zero.
    pub fn new(history_len: usize) -> Self {
        assert!(history_len > 0, "history length must be at least 1");
        SidPredictor {
            history_len,
            window: VecDeque::with_capacity(history_len + 1),
            table: HashMap::default(),
            predictions: 0,
            hits_possible: 0,
        }
    }

    /// Returns the configured history length.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Reconfigures the history length (the host updates this register when
    /// tenants are added/removed or bandwidth allocations change).
    ///
    /// Learned mappings are kept; the observation window is trimmed.
    ///
    /// # Panics
    ///
    /// Panics if `history_len` is zero.
    pub fn set_history_len(&mut self, history_len: usize) {
        assert!(history_len > 0, "history length must be at least 1");
        self.history_len = history_len;
        while self.window.len() > self.history_len + 1 {
            self.window.pop_front();
        }
    }

    /// Records an arrival from `sid`, training the table.
    pub fn observe(&mut self, sid: Sid) {
        self.window.push_back(sid);
        if self.window.len() > self.history_len {
            // The SID `history_len` steps back now predicts `sid`.
            let past = self.window[self.window.len() - 1 - self.history_len];
            self.table.insert(past, sid);
            if self.window.len() > self.history_len + 1 {
                self.window.pop_front();
            }
        }
    }

    /// Predicts the SID expected `history_len` requests after `current`.
    pub fn predict(&mut self, current: Sid) -> Option<Sid> {
        self.predictions += 1;
        let p = self.table.get(&current).copied();
        if p.is_some() {
            self.hits_possible += 1;
        }
        p
    }

    /// Returns (predictions made, predictions that had a table entry).
    pub fn coverage(&self) -> (u64, u64) {
        (self.predictions, self.hits_possible)
    }

    /// Appends the predictor's mutable state (observation window, learned
    /// table in sorted-key order, coverage counters) to a checkpoint word
    /// stream. Sorting makes the encoding independent of hash order.
    fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.window.len() as u64);
        out.extend(self.window.iter().map(|s| s.raw() as u64));
        let mut entries: Vec<(Sid, Sid)> = self.table.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        out.push(entries.len() as u64);
        for (k, v) in entries {
            out.push(k.raw() as u64);
            out.push(v.raw() as u64);
        }
        out.push(self.predictions);
        out.push(self.hits_possible);
    }

    /// Restores the state written by [`SidPredictor::snapshot_words`].
    fn restore_words(&mut self, r: &mut WordReader<'_>) -> Option<()> {
        let n = r.len_capped(self.history_len + 1)?;
        self.window.clear();
        for _ in 0..n {
            self.window.push_back(r.decode()?);
        }
        let n = r.len_capped(r.remaining() / 2)?;
        self.table.clear();
        for _ in 0..n {
            let key: Sid = r.decode()?;
            let value: Sid = r.decode()?;
            self.table.insert(key, value);
        }
        self.predictions = r.next()?;
        self.hits_possible = r.next()?;
        Some(())
    }
}

/// The per-DID history of recently used gIOVAs, kept in main memory.
///
/// The chipset-side IOVA history reader fetches the most recent entries for
/// a predicted tenant and issues translation requests for them. Keeping the
/// history in main memory makes the hardware cost independent of tenant
/// count (§III) — only the small reader state machine lives on the chipset.
///
/// # Examples
///
/// ```
/// use hypersio_types::{Did, GIova};
/// use hypertrio_core::IovaHistoryReader;
///
/// let mut h = IovaHistoryReader::new(8);
/// h.record(Did::new(0), GIova::new(0xbbe0_0000));
/// h.record(Did::new(0), GIova::new(0xbbe0_0042)); // same page: coalesced
/// h.record(Did::new(0), GIova::new(0x3480_0000));
/// assert_eq!(
///     h.recent(Did::new(0), 2),
///     vec![GIova::new(0x3480_0000), GIova::new(0xbbe0_0000)]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct IovaHistoryReader {
    depth: usize,
    /// Most-recent-first page-granule history per DID.
    /// Per-tenant recent-IOVA rings. Touched on every observed request
    /// (record) and every prefetch plan (read), so it uses the Fx hasher;
    /// the map is never iterated, keeping behaviour hash-order independent.
    histories: HashMap<Did, VecDeque<GIova>, FxBuildHasher>,
    fetches: u64,
}

/// Granule at which history entries are coalesced (4 KB pages; consecutive
/// accesses to the same page collapse into one entry).
const HISTORY_PAGE_SHIFT: u32 = 12;

impl IovaHistoryReader {
    /// Creates a history with `depth` remembered pages per tenant.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "history depth must be at least 1");
        IovaHistoryReader {
            depth,
            histories: HashMap::default(),
            fetches: 0,
        }
    }

    /// Records a translated gIOVA for `did` (called on every completed
    /// translation, as the IOMMU writes the running history to memory).
    pub fn record(&mut self, did: Did, iova: GIova) {
        let page = GIova::new(iova.raw() >> HISTORY_PAGE_SHIFT << HISTORY_PAGE_SHIFT);
        let h = self.histories.entry(did).or_default();
        if let Some(pos) = h.iter().position(|&p| p == page) {
            h.remove(pos);
        }
        h.push_front(page);
        h.truncate(self.depth);
    }

    /// Returns the `n` most recently used pages of `did`, most recent first.
    ///
    /// Each call models one memory fetch by the history reader.
    pub fn recent(&mut self, did: Did, n: usize) -> Vec<GIova> {
        let mut pages = Vec::new();
        self.recent_into(did, n, &mut pages);
        pages
    }

    /// Allocation-free variant of [`Self::recent`]: clears `out` and fills
    /// it with the `n` most recently used pages, most recent first. Counts
    /// one memory fetch, exactly like `recent`.
    pub fn recent_into(&mut self, did: Did, n: usize, out: &mut Vec<GIova>) {
        self.fetches += 1;
        out.clear();
        if let Some(h) = self.histories.get(&did) {
            out.extend(h.iter().take(n).copied());
        }
    }

    /// Returns the number of history fetches performed.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Discards the remembered pages of `did` (the hypervisor resets the
    /// in-memory history when it shoots down that domain's translations —
    /// the recorded gIOVAs would otherwise drive prefetches of mappings
    /// that no longer exist).
    pub fn forget(&mut self, did: Did) {
        self.histories.remove(&did);
    }

    /// Discards every tenant's remembered pages (global shootdown).
    pub fn forget_all(&mut self) {
        self.histories.clear();
    }

    /// Appends the reader's mutable state (per-DID rings in sorted-DID
    /// order, fetch counter) to a checkpoint word stream.
    fn snapshot_words(&self, out: &mut Vec<u64>) {
        let mut dids: Vec<Did> = self.histories.keys().copied().collect();
        dids.sort_unstable();
        out.push(dids.len() as u64);
        for did in dids {
            let ring = &self.histories[&did];
            out.push(did.raw() as u64);
            out.push(ring.len() as u64);
            out.extend(ring.iter().map(|p| p.raw()));
        }
        out.push(self.fetches);
    }

    /// Restores the state written by [`IovaHistoryReader::snapshot_words`].
    fn restore_words(&mut self, r: &mut WordReader<'_>) -> Option<()> {
        let tenants = r.len_capped(r.remaining())?;
        self.histories.clear();
        for _ in 0..tenants {
            let did: Did = r.decode()?;
            let len = r.len_capped(self.depth)?;
            let mut ring = VecDeque::with_capacity(len);
            for _ in 0..len {
                ring.push_back(r.decode()?);
            }
            self.histories.insert(did, ring);
        }
        self.fetches = r.next()?;
        Some(())
    }
}

/// Configuration and state of the on-device Prefetch Unit plus the
/// chipset-side history reader.
///
/// The unit is consulted *concurrently* with the DevTLB: a PB hit supplies
/// the translation without any PCIe traffic. On a PB miss the SID-predictor
/// proposes a tenant to prefetch for; the model then reads that tenant's
/// two most-recent gIOVAs from memory and translates them through the
/// IOMMU, filling the PB (and warming the walk caches as a side effect).
pub struct PrefetchUnit {
    buffer: FullyAssocCache<DevTlbKey, TlbEntry>,
    predictor: SidPredictor,
    history: IovaHistoryReader,
    pages_per_prefetch: usize,
}

impl PrefetchUnit {
    /// Creates a prefetch unit.
    ///
    /// The paper's configuration (Table IV): `pb_entries = 8`,
    /// `history_len = 48`, `pages_per_prefetch = 2`, with a history depth
    /// matching the pages fetched per prefetch.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(pb_entries: usize, history_len: usize, pages_per_prefetch: usize) -> Self {
        assert!(pages_per_prefetch > 0, "must prefetch at least one page");
        PrefetchUnit {
            buffer: FullyAssocCache::new(pb_entries, PolicyKind::Lru),
            predictor: SidPredictor::new(history_len),
            history: IovaHistoryReader::new(pages_per_prefetch.max(4)),
            pages_per_prefetch,
        }
    }

    /// Returns the number of pages fetched per prefetch (paper: 2).
    pub fn pages_per_prefetch(&self) -> usize {
        self.pages_per_prefetch
    }

    /// Returns the SID-predictor history length (paper: 48).
    pub fn history_len(&self) -> usize {
        self.predictor.history_len()
    }

    /// Checks the Prefetch Buffer for `iova` (probing 2 MB then 4 KB tags).
    ///
    /// The two granule tags are probed in one fused pass; exactly one hit
    /// or miss is recorded, identical to a 2 MB peek followed by a single
    /// policy-visible lookup.
    pub fn lookup(&mut self, did: Did, iova: GIova, now: u64) -> Option<TlbEntry> {
        use hypersio_types::PageSize;
        let key_2m = DevTlbKey::new(did, iova, PageSize::Size2M);
        let key_4k = DevTlbKey::new(did, iova, PageSize::Size4K);
        self.buffer.lookup_fused(&key_2m, &key_4k, now).copied()
    }

    /// Probes the Prefetch Buffer for a batch of gIOVAs, each at its own
    /// access index, exactly as sequential [`Self::lookup`] calls would —
    /// one recorded hit or miss per element. The per-element `nows` are
    /// explicit because the caller probes only the DevTLB-miss subset of a
    /// request batch, whose request indices are not contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `iovas`, `nows`, and `out` lengths differ.
    pub fn lookup_batch(
        &mut self,
        did: Did,
        iovas: &[GIova],
        nows: &[u64],
        out: &mut [Option<TlbEntry>],
    ) {
        assert_eq!(iovas.len(), nows.len(), "lookup_batch length mismatch");
        assert_eq!(
            iovas.len(),
            out.len(),
            "lookup_batch buffer length mismatch"
        );
        for ((&iova, &now), slot) in iovas.iter().zip(nows.iter()).zip(out.iter_mut()) {
            *slot = self.lookup(did, iova, now);
        }
    }

    /// Observes an arrival from `sid` and, if the predictor has a mapping,
    /// returns the prefetch to launch.
    pub fn observe(&mut self, sid: Sid) -> Option<PrefetchRequest> {
        self.predictor.observe(sid);
        self.predictor
            .predict(sid)
            .map(|sid| PrefetchRequest { sid })
    }

    /// Records a completed translation in the per-DID history.
    pub fn record_history(&mut self, did: Did, iova: GIova) {
        self.history.record(did, iova);
    }

    /// Reads the most recent pages to prefetch for `did`.
    pub fn history_pages(&mut self, did: Did) -> Vec<GIova> {
        let n = self.pages_per_prefetch;
        self.history.recent(did, n)
    }

    /// Plans one prefetch for `did`: reads the tenant's recent pages from
    /// history (one memory fetch) and filters out pages already resident in
    /// the Prefetch Buffer, returning the pages the caller should translate
    /// and later [`PrefetchUnit::fill`].
    ///
    /// The residency probes count in the PB statistics exactly like demand
    /// lookups (hardware shares the tag port).
    pub fn plan(&mut self, did: Did, now: u64) -> Vec<GIova> {
        let mut pages = Vec::new();
        self.plan_into(did, now, &mut pages);
        pages
    }

    /// Allocation-free variant of [`Self::plan`]: clears `out` and fills it
    /// with the pages to translate. History fetch and residency-probe
    /// accounting are identical to `plan`.
    pub fn plan_into(&mut self, did: Did, now: u64, out: &mut Vec<GIova>) {
        let n = self.pages_per_prefetch;
        self.history.recent_into(did, n, out);
        out.retain(|&iova| self.lookup(did, iova, now).is_none());
    }

    /// Installs a prefetched translation into the Prefetch Buffer.
    ///
    /// Returns the entry evicted to make room, if any (the 8-entry PB
    /// churns under load; eviction visibility is what the observability
    /// layer uses to report PB pressure).
    pub fn fill(
        &mut self,
        did: Did,
        iova: GIova,
        entry: TlbEntry,
        now: u64,
    ) -> Option<(DevTlbKey, TlbEntry)> {
        let key = DevTlbKey::new(did, iova, entry.size);
        self.buffer.insert(key, entry, now)
    }

    /// Shoots down everything the unit holds for `did`: the Prefetch
    /// Buffer entries (which would otherwise keep serving stale gIOVA→hPA
    /// translations after an invalidation) and the per-DID IOVA history
    /// (which would re-prefetch the invalidated pages). Returns the number
    /// of PB entries removed.
    pub fn invalidate_did(&mut self, did: Did) -> usize {
        self.history.forget(did);
        self.buffer.invalidate_matching(|k| k.did == did)
    }

    /// Global shootdown: drops every PB entry and every tenant's history.
    /// Returns the number of PB entries removed.
    pub fn invalidate_all(&mut self) -> usize {
        self.history.forget_all();
        let removed = self.buffer.len();
        self.buffer.clear();
        removed
    }

    /// Returns Prefetch Buffer statistics (hits = requests served without
    /// touching the DevTLB/IOMMU path).
    pub fn buffer_stats(&self) -> &CacheStats {
        self.buffer.stats()
    }

    /// Returns predictor coverage: (predictions made, table hits).
    pub fn predictor_coverage(&self) -> (u64, u64) {
        self.predictor.coverage()
    }

    /// Returns the number of history fetches performed.
    pub fn history_fetches(&self) -> u64 {
        self.history.fetches()
    }

    /// Appends the unit's full mutable state — Prefetch Buffer slab,
    /// SID-predictor, and IOVA histories — to a checkpoint word stream.
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        self.buffer.snapshot_words(out);
        self.predictor.snapshot_words(out);
        self.history.snapshot_words(out);
    }

    /// Restores the state written by [`PrefetchUnit::snapshot_words`] into
    /// this identically configured unit. Returns `None` on a corrupt
    /// stream.
    pub fn restore_words(&mut self, r: &mut WordReader<'_>) -> Option<()> {
        self.buffer.restore_words(r)?;
        self.predictor.restore_words(r)?;
        self.history.restore_words(r)
    }
}

impl fmt::Debug for PrefetchUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrefetchUnit")
            .field("pb_capacity", &self.buffer.capacity())
            .field("history_len", &self.predictor.history_len())
            .field("pages_per_prefetch", &self.pages_per_prefetch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersio_types::{HPa, PageSize};

    #[test]
    fn predictor_learns_round_robin() {
        let mut p = SidPredictor::new(4);
        for round in 0..8u32 {
            for t in 0..8u32 {
                p.observe(Sid::new(t));
                let _ = round;
            }
        }
        // Four steps after tenant 1 comes tenant 5.
        assert_eq!(p.predict(Sid::new(1)), Some(Sid::new(5)));
        // Wrap-around: four steps after 6 comes 2.
        assert_eq!(p.predict(Sid::new(6)), Some(Sid::new(2)));
    }

    #[test]
    fn predictor_needs_warmup() {
        let mut p = SidPredictor::new(4);
        p.observe(Sid::new(0));
        assert_eq!(p.predict(Sid::new(0)), None);
        let (asked, hit) = p.coverage();
        assert_eq!((asked, hit), (1, 0));
    }

    #[test]
    fn predictor_adapts_to_changed_order() {
        let mut p = SidPredictor::new(1);
        for _ in 0..4 {
            p.observe(Sid::new(0));
            p.observe(Sid::new(1));
        }
        assert_eq!(p.predict(Sid::new(0)), Some(Sid::new(1)));
        // Tenant 2 replaces tenant 1 in the rotation.
        for _ in 0..4 {
            p.observe(Sid::new(0));
            p.observe(Sid::new(2));
        }
        assert_eq!(p.predict(Sid::new(0)), Some(Sid::new(2)));
    }

    #[test]
    fn set_history_len_trims_window() {
        let mut p = SidPredictor::new(16);
        for t in 0..32u32 {
            p.observe(Sid::new(t));
        }
        p.set_history_len(2);
        p.observe(Sid::new(100));
        p.observe(Sid::new(101));
        // Window is now short but training continues.
        assert_eq!(p.predict(Sid::new(100)), None); // 100 maps 2 ahead, not yet seen
        p.observe(Sid::new(102));
        assert_eq!(p.predict(Sid::new(100)), Some(Sid::new(102)));
    }

    #[test]
    fn history_is_mru_first_and_coalesced() {
        let mut h = IovaHistoryReader::new(4);
        let did = Did::new(0);
        h.record(did, GIova::new(0x1000));
        h.record(did, GIova::new(0x2000));
        h.record(did, GIova::new(0x1abc)); // page 0x1000 again -> moves to front
        assert_eq!(
            h.recent(did, 4),
            vec![GIova::new(0x1000), GIova::new(0x2000)]
        );
    }

    #[test]
    fn history_depth_is_bounded() {
        let mut h = IovaHistoryReader::new(2);
        let did = Did::new(3);
        for i in 0..10u64 {
            h.record(did, GIova::new(i * 0x1000));
        }
        assert_eq!(h.recent(did, 10).len(), 2);
    }

    #[test]
    fn history_unknown_did_is_empty() {
        let mut h = IovaHistoryReader::new(2);
        assert!(h.recent(Did::new(42), 2).is_empty());
        assert_eq!(h.fetches(), 1);
    }

    #[test]
    fn unit_end_to_end_prefetch_flow() {
        let mut pu = PrefetchUnit::new(8, 2, 2);
        let entry = TlbEntry {
            hpa_base: HPa::new(0x7000_0000),
            size: PageSize::Size2M,
        };
        // Tenant 1's history is populated by earlier completions.
        pu.record_history(Did::new(1), GIova::new(0xbbe0_0000));
        // Warm the predictor with RR over 3 tenants.
        let mut req = None;
        for _ in 0..6 {
            for t in 0..3u32 {
                req = pu.observe(Sid::new(t));
            }
        }
        // After observing tenant 2, the predictor proposes a tenant (2 steps
        // ahead of 2 in RR(3) = tenant 1).
        let req = req.expect("predictor trained");
        assert_eq!(req.sid, Sid::new(1));
        // The model fetches tenant 1's recent pages and fills the PB.
        let pages = pu.history_pages(Did::new(1));
        assert_eq!(pages, vec![GIova::new(0xbbe0_0000)]);
        pu.fill(Did::new(1), pages[0], entry, 100);
        // A later request from tenant 1 hits the PB.
        let hit = pu
            .lookup(Did::new(1), GIova::new(0xbbe0_1234), 101)
            .unwrap();
        assert_eq!(hit.translate(GIova::new(0xbbe0_1234)).raw(), 0x7000_1234);
        assert_eq!(pu.buffer_stats().hits(), 1);
    }

    #[test]
    fn shootdown_regression_pb_must_not_serve_stale_entries() {
        // Regression for the latent invalidation gap: before
        // `invalidate_did` existed, a DID shootdown cleared the DevTLB but
        // the PB kept serving the stale gIOVA→hPA mapping and the history
        // kept re-planning prefetches of it.
        let mut pu = PrefetchUnit::new(8, 48, 2);
        let did = Did::new(3);
        let iova = GIova::new(0xbbe0_0000);
        let entry = TlbEntry {
            hpa_base: HPa::new(0x7000_0000),
            size: PageSize::Size2M,
        };
        pu.record_history(did, iova);
        pu.fill(did, iova, entry, 0);
        assert!(pu.lookup(did, iova, 1).is_some());
        assert_eq!(pu.history_pages(did), vec![GIova::new(0xbbe0_0000)]);

        assert_eq!(pu.invalidate_did(did), 1);
        assert!(
            pu.lookup(did, iova, 2).is_none(),
            "PB served a stale translation after its DID was shot down"
        );
        assert!(
            pu.history_pages(did).is_empty(),
            "history would re-prefetch invalidated pages"
        );

        // Another tenant's state is untouched.
        let other = Did::new(4);
        pu.record_history(other, GIova::new(0x1000));
        pu.fill(
            other,
            GIova::new(0x1000),
            TlbEntry {
                hpa_base: HPa::new(0x8000_0000),
                size: PageSize::Size4K,
            },
            3,
        );
        pu.invalidate_did(did);
        assert!(pu.lookup(other, GIova::new(0x1000), 4).is_some());

        // Global shootdown drops everything.
        assert_eq!(pu.invalidate_all(), 1);
        assert!(pu.lookup(other, GIova::new(0x1000), 5).is_none());
        assert!(pu.history_pages(other).is_empty());
    }

    #[test]
    fn pb_miss_is_single_stat() {
        let mut pu = PrefetchUnit::new(8, 48, 2);
        assert!(pu.lookup(Did::new(0), GIova::new(0x1000), 0).is_none());
        assert_eq!(pu.buffer_stats().accesses(), 1);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_history_rejected() {
        let _ = SidPredictor::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_prefetch_pages_rejected() {
        let _ = PrefetchUnit::new(8, 48, 0);
    }
}
