//! Pending Translation Buffer: many in-flight translations, out-of-order
//! completion (§III).

use std::fmt;

/// Opaque handle to one in-flight translation in the PTB.
///
/// Tokens are unique for the lifetime of the buffer (a `u64` counter), so a
/// stale token can never alias a live entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PtbToken(u64);

/// Occupancy and drop statistics for the PTB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtbStats {
    /// Entries successfully allocated.
    pub allocated: u64,
    /// Allocation attempts rejected because the buffer was full — each of
    /// these is a dropped (and later retried) packet in the model.
    pub rejected: u64,
    /// Entries completed and freed.
    pub completed: u64,
    /// Highest simultaneous occupancy observed.
    pub peak_occupancy: usize,
}

/// The Pending Translation Buffer.
///
/// A device needs one PTB entry per packet whose translations are still
/// outstanding. Entries complete out of order — a hit-under-miss can retire
/// while an older packet still waits on a 24-access page-table walk. The
/// paper's Base design has a single entry (one outstanding translation, as
/// in devices that block on ATS); HyperTRIO uses 32 (Table IV).
///
/// # Examples
///
/// ```
/// use hypertrio_core::PendingTranslationBuffer;
///
/// let mut ptb = PendingTranslationBuffer::new(2);
/// let a = ptb.try_allocate().unwrap();
/// let b = ptb.try_allocate().unwrap();
/// assert!(ptb.try_allocate().is_none()); // full: packet dropped
/// ptb.complete(b);                       // out-of-order completion
/// assert!(ptb.try_allocate().is_some());
/// ptb.complete(a);
/// ```
#[derive(Debug, Clone)]
pub struct PendingTranslationBuffer {
    capacity: usize,
    /// Live tokens, unordered. A flat vector beats a hash set here: the
    /// buffer holds at most a few dozen entries (1 for Base, 32 for
    /// HyperTRIO), so a linear scan on completion is a handful of `u64`
    /// compares in one cache line — far cheaper than hashing every
    /// allocate/complete on the per-packet path.
    live: Vec<u64>,
    next_token: u64,
    stats: PtbStats,
}

impl PendingTranslationBuffer {
    /// Creates a PTB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — even the Base design has one entry.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PTB needs at least one entry");
        PendingTranslationBuffer {
            capacity,
            live: Vec::with_capacity(capacity),
            next_token: 0,
            stats: PtbStats::default(),
        }
    }

    /// Returns the entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of in-flight entries.
    pub fn occupancy(&self) -> usize {
        self.live.len()
    }

    /// Returns true if no translations are in flight.
    pub fn is_idle(&self) -> bool {
        self.live.is_empty()
    }

    /// Returns true if a new packet cannot be admitted.
    pub fn is_full(&self) -> bool {
        self.live.len() == self.capacity
    }

    /// Tries to admit a new packet's translation work.
    ///
    /// Returns a token on success; `None` means the buffer is full and the
    /// packet is dropped (the model retries it at the next arrival slot).
    pub fn try_allocate(&mut self) -> Option<PtbToken> {
        if self.is_full() {
            self.stats.rejected += 1;
            return None;
        }
        let token = self.next_token;
        self.next_token += 1;
        self.live.push(token);
        self.stats.allocated += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.live.len());
        Some(PtbToken(token))
    }

    /// Completes (frees) an in-flight entry, in any order.
    ///
    /// # Panics
    ///
    /// Panics if the token is not live (double completion or a token from
    /// another buffer) — this is a simulator logic error, not a modelled
    /// hardware condition.
    pub fn complete(&mut self, token: PtbToken) {
        let slot = self
            .live
            .iter()
            .position(|&t| t == token.0)
            .unwrap_or_else(|| panic!("PTB token {token:?} is not live"));
        self.live.swap_remove(slot);
        self.stats.completed += 1;
    }

    /// Returns occupancy/drop statistics.
    pub fn stats(&self) -> PtbStats {
        self.stats
    }
}

impl fmt::Display for PendingTranslationBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PTB {}/{} in flight ({} dropped)",
            self.occupancy(),
            self.capacity,
            self.stats.rejected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_design_has_one_entry() {
        let mut ptb = PendingTranslationBuffer::new(1);
        let t = ptb.try_allocate().unwrap();
        assert!(ptb.is_full());
        assert!(ptb.try_allocate().is_none());
        ptb.complete(t);
        assert!(ptb.is_idle());
    }

    #[test]
    fn out_of_order_completion() {
        let mut ptb = PendingTranslationBuffer::new(3);
        let a = ptb.try_allocate().unwrap();
        let b = ptb.try_allocate().unwrap();
        let c = ptb.try_allocate().unwrap();
        ptb.complete(b);
        ptb.complete(c);
        ptb.complete(a);
        assert!(ptb.is_idle());
        assert_eq!(ptb.stats().completed, 3);
    }

    #[test]
    fn rejections_are_counted_as_drops() {
        let mut ptb = PendingTranslationBuffer::new(1);
        let _t = ptb.try_allocate().unwrap();
        for _ in 0..5 {
            assert!(ptb.try_allocate().is_none());
        }
        assert_eq!(ptb.stats().rejected, 5);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut ptb = PendingTranslationBuffer::new(8);
        let tokens: Vec<_> = (0..5).map(|_| ptb.try_allocate().unwrap()).collect();
        for t in tokens {
            ptb.complete(t);
        }
        let _ = ptb.try_allocate().unwrap();
        assert_eq!(ptb.stats().peak_occupancy, 5);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_completion_panics() {
        let mut ptb = PendingTranslationBuffer::new(2);
        let t = ptb.try_allocate().unwrap();
        ptb.complete(t);
        ptb.complete(t);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = PendingTranslationBuffer::new(0);
    }

    #[test]
    fn tokens_never_alias() {
        let mut ptb = PendingTranslationBuffer::new(1);
        let a = ptb.try_allocate().unwrap();
        ptb.complete(a);
        let b = ptb.try_allocate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn display_shows_occupancy() {
        let mut ptb = PendingTranslationBuffer::new(4);
        let _a = ptb.try_allocate().unwrap();
        assert_eq!(ptb.to_string(), "PTB 1/4 in flight (0 dropped)");
    }
}
