//! Property-style tests for the translation substrate.
//!
//! Same invariants as the original proptest suite, with inputs drawn from
//! the in-tree [`SplitMix64`] generator under fixed seeds so every run is
//! reproducible.

use std::collections::BTreeSet;

use hypersio_mem::{Iommu, IommuParams, TenantSpace, TwoDimWalker, WalkCacheConfig, WalkCaches};
use hypersio_types::{Did, GIova, GPa, PageSize, Sid, SplitMix64};

const CASES: usize = 48;

/// Draws a tenant page inventory: a few 2 MB data pages and a few 4 KB
/// pages at paper-like addresses.
fn inventory(rng: &mut SplitMix64) -> Vec<(u64, PageSize)> {
    let mut data = BTreeSet::new();
    let n_data = rng.range_inclusive(1, 7);
    while (data.len() as u64) < n_data {
        data.insert(rng.below(32));
    }
    let mut small = BTreeSet::new();
    let n_small = rng.range_inclusive(1, 7);
    while (small.len() as u64) < n_small {
        small.insert(rng.below(64));
    }
    let mut pages: Vec<(u64, PageSize)> = data
        .into_iter()
        .map(|i| (0xbbe0_0000 + i * 0x20_0000, PageSize::Size2M))
        .collect();
    pages.extend(
        small
            .into_iter()
            .map(|i| (0xf000_0000 + i * 0x1000, PageSize::Size4K)),
    );
    pages
}

fn build_space(did: u32, pages: &[(u64, PageSize)]) -> TenantSpace {
    let mut b = TenantSpace::builder(Did::new(did));
    for &(base, size) in pages {
        b.map(GIova::new(base), size);
    }
    b.build()
}

#[test]
fn translation_preserves_page_offset() {
    let mut rng = SplitMix64::new(0x3001);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let pick = rng.index(16);
        let offset = rng.below(4096);
        let space = build_space(0, &pages);
        let (base, size) = pages[pick % pages.len()];
        let iova = GIova::new(base + offset % size.bytes());
        let (hpa, got_size) = space.lookup(iova).expect("mapped page");
        assert_eq!(got_size, size);
        assert_eq!(
            hpa.raw() & size.offset_mask(),
            iova.raw() & size.offset_mask()
        );
    }
}

#[test]
fn cold_walk_access_counts_match_paper() {
    let mut rng = SplitMix64::new(0x3002);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let pick = rng.index(16);
        let space = build_space(0, &pages);
        let (base, size) = pages[pick % pages.len()];
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        let out = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(base), &mut caches, 0)
            .expect("mapped page");
        let expected = match size {
            PageSize::Size4K => 24,
            PageSize::Size2M => 19,
            PageSize::Size1G => 14,
        };
        assert_eq!(out.dram_accesses, expected);
    }
}

#[test]
fn warm_walk_agrees_with_cold_walk() {
    let mut rng = SplitMix64::new(0x3003);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let pick = rng.index(16);
        let offset = rng.below(0x20_0000);
        let space = build_space(0, &pages);
        let (base, size) = pages[pick % pages.len()];
        let iova = GIova::new(base + offset % size.bytes());
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        let cold = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut caches, 0).unwrap();
        let warm = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut caches, 1).unwrap();
        assert_eq!(cold.hpa, warm.hpa);
        assert!(warm.dram_accesses <= cold.dram_accesses);
    }
}

#[test]
fn every_guest_node_is_host_mapped() {
    let mut rng = SplitMix64::new(0x3004);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let space = build_space(3, &pages);
        for node in space.guest_table().node_addrs() {
            assert!(space.host_walk(GPa::new(node)).is_ok());
        }
    }
}

#[test]
fn tenants_share_gpa_layout_but_not_hpa() {
    let mut rng = SplitMix64::new(0x3005);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let pick = rng.index(16);
        let a = build_space(0, &pages);
        let b = build_space(1, &pages);
        let (base, _) = pages[pick % pages.len()];
        let iova = GIova::new(base);
        let ga = a.guest_walk(iova).unwrap().translate(iova.raw());
        let gb = b.guest_walk(iova).unwrap().translate(iova.raw());
        assert_eq!(ga, gb, "same driver -> same gPA layout");
        let ha = a.lookup(iova).unwrap().0;
        let hb = b.lookup(iova).unwrap().0;
        assert_ne!(ha, hb, "host frames must be isolated");
    }
}

#[test]
fn iommu_translation_matches_functional_lookup() {
    let mut rng = SplitMix64::new(0x3006);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let picks: Vec<(usize, u64)> = (0..rng.range_inclusive(1, 23))
            .map(|_| (rng.index(16), rng.below(0x1000)))
            .collect();
        let spaces: Vec<TenantSpace> = (0..2).map(|d| build_space(d, &pages)).collect();
        let mut iommu = Iommu::new(IommuParams::paper(), spaces);
        for (i, &(pick, offset)) in picks.iter().enumerate() {
            let (base, size) = pages[pick % pages.len()];
            let did = Did::new((i % 2) as u32);
            let iova = GIova::new(base + offset % size.bytes());
            let want = iommu.spaces()[did.index()].lookup(iova).unwrap().0;
            let resp = iommu
                .translate(Sid::new(did.raw()), did, iova, i as u64)
                .unwrap();
            assert_eq!(resp.hpa, want);
            assert!(resp.dram_accesses <= 26, "context(2) + full walk(24)");
            assert_eq!(
                resp.latency.as_ns(),
                resp.dram_accesses * 50,
                "latency is DRAM reads x 50ns"
            );
        }
    }
}

#[test]
fn unmapped_addresses_always_fault() {
    let mut rng = SplitMix64::new(0x3007);
    for _ in 0..CASES {
        let pages = inventory(&mut rng);
        let probe = rng.range_inclusive(0x1_0000_0000, 0x1_ffff_ffff);
        let space = build_space(0, &pages);
        // The probe range is far outside both paper address ranges.
        assert!(space.lookup(GIova::new(probe)).is_none());
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        assert!(
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(probe), &mut caches, 0).is_err()
        );
    }
}
