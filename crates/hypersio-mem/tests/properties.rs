//! Property-based tests for the translation substrate.

use hypersio_mem::{
    Iommu, IommuParams, TenantSpace, TwoDimWalker, WalkCacheConfig, WalkCaches,
};
use hypersio_types::{Did, GIova, GPa, PageSize, Sid};
use proptest::prelude::*;

/// Strategy for a tenant page inventory: a few 2 MB data pages and a few
/// 4 KB pages at paper-like addresses.
fn inventory() -> impl Strategy<Value = Vec<(u64, PageSize)>> {
    (
        prop::collection::btree_set(0u64..32, 1..8),
        prop::collection::btree_set(0u64..64, 1..8),
    )
        .prop_map(|(data, small)| {
            let mut pages: Vec<(u64, PageSize)> = data
                .into_iter()
                .map(|i| (0xbbe0_0000 + i * 0x20_0000, PageSize::Size2M))
                .collect();
            pages.extend(
                small
                    .into_iter()
                    .map(|i| (0xf000_0000 + i * 0x1000, PageSize::Size4K)),
            );
            pages
        })
}

fn build_space(did: u32, pages: &[(u64, PageSize)]) -> TenantSpace {
    let mut b = TenantSpace::builder(Did::new(did));
    for &(base, size) in pages {
        b.map(GIova::new(base), size);
    }
    b.build()
}

proptest! {
    #[test]
    fn translation_preserves_page_offset(
        pages in inventory(),
        pick in 0usize..16,
        offset in 0u64..4096,
    ) {
        let space = build_space(0, &pages);
        let (base, size) = pages[pick % pages.len()];
        let iova = GIova::new(base + offset % size.bytes());
        let (hpa, got_size) = space.lookup(iova).expect("mapped page");
        prop_assert_eq!(got_size, size);
        prop_assert_eq!(hpa.raw() & size.offset_mask(), iova.raw() & size.offset_mask());
    }

    #[test]
    fn cold_walk_access_counts_match_paper(
        pages in inventory(),
        pick in 0usize..16,
    ) {
        let space = build_space(0, &pages);
        let (base, size) = pages[pick % pages.len()];
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        let out = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(base), &mut caches, 0)
            .expect("mapped page");
        let expected = match size {
            PageSize::Size4K => 24,
            PageSize::Size2M => 19,
            PageSize::Size1G => 14,
        };
        prop_assert_eq!(out.dram_accesses, expected);
    }

    #[test]
    fn warm_walk_agrees_with_cold_walk(
        pages in inventory(),
        pick in 0usize..16,
        offset in 0u64..0x20_0000,
    ) {
        let space = build_space(0, &pages);
        let (base, size) = pages[pick % pages.len()];
        let iova = GIova::new(base + offset % size.bytes());
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        let cold = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut caches, 0).unwrap();
        let warm = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut caches, 1).unwrap();
        prop_assert_eq!(cold.hpa, warm.hpa);
        prop_assert!(warm.dram_accesses <= cold.dram_accesses);
    }

    #[test]
    fn every_guest_node_is_host_mapped(pages in inventory()) {
        let space = build_space(3, &pages);
        for node in space.guest_table().node_addrs() {
            prop_assert!(space.host_walk(GPa::new(node)).is_ok());
        }
    }

    #[test]
    fn tenants_share_gpa_layout_but_not_hpa(
        pages in inventory(),
        pick in 0usize..16,
    ) {
        let a = build_space(0, &pages);
        let b = build_space(1, &pages);
        let (base, _) = pages[pick % pages.len()];
        let iova = GIova::new(base);
        let ga = a.guest_walk(iova).unwrap().translate(iova.raw());
        let gb = b.guest_walk(iova).unwrap().translate(iova.raw());
        prop_assert_eq!(ga, gb, "same driver -> same gPA layout");
        let ha = a.lookup(iova).unwrap().0;
        let hb = b.lookup(iova).unwrap().0;
        prop_assert_ne!(ha, hb, "host frames must be isolated");
    }

    #[test]
    fn iommu_translation_matches_functional_lookup(
        pages in inventory(),
        picks in prop::collection::vec((0usize..16, 0u64..0x1000), 1..24),
    ) {
        let spaces: Vec<TenantSpace> = (0..2).map(|d| build_space(d, &pages)).collect();
        let mut iommu = Iommu::new(IommuParams::paper(), spaces);
        for (i, &(pick, offset)) in picks.iter().enumerate() {
            let (base, size) = pages[pick % pages.len()];
            let did = Did::new((i % 2) as u32);
            let iova = GIova::new(base + offset % size.bytes());
            let want = iommu.spaces()[did.index()].lookup(iova).unwrap().0;
            let resp = iommu
                .translate(Sid::new(did.raw()), did, iova, i as u64)
                .unwrap();
            prop_assert_eq!(resp.hpa, want);
            prop_assert!(resp.dram_accesses <= 26, "context(2) + full walk(24)");
            prop_assert_eq!(
                resp.latency.as_ns(),
                resp.dram_accesses * 50,
                "latency is DRAM reads x 50ns"
            );
        }
    }

    #[test]
    fn unmapped_addresses_always_fault(
        pages in inventory(),
        probe in 0x1_0000_0000u64..0x2_0000_0000,
    ) {
        let space = build_space(0, &pages);
        // The probe range is far outside both paper address ranges.
        prop_assert!(space.lookup(GIova::new(probe)).is_none());
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        prop_assert!(
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(probe), &mut caches, 0).is_err()
        );
    }
}
