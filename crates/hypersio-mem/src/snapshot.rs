//! [`WordCodec`] implementations for the memory-side cache payloads, so the
//! walk caches, nested TLB, and context cache can be captured in a run
//! checkpoint (DESIGN.md §16).
//!
//! Encodings follow the crate-wide snapshot rules: fixed word counts per
//! type, every discriminant range-checked on decode, and `None` (never a
//! panic) for any byte pattern that does not round-trip.

use hypersio_cache::WordCodec;
use hypersio_types::PageSize;

use crate::context::ContextEntry;
use crate::page_table::Pte;
use crate::walk_cache::{NestedKey, WalkCacheKey};

impl WordCodec for Pte {
    // [variant, word0, word1]: Table { next } = [0, next, 0];
    // Leaf { target, size } = [1, target, page shift].
    const WORDS: usize = 3;

    fn encode_words(&self, out: &mut Vec<u64>) {
        match *self {
            Pte::Table { next } => {
                out.push(0);
                out.push(next);
                out.push(0);
            }
            Pte::Leaf { target, size } => {
                out.push(1);
                out.push(target);
                out.push(size.shift() as u64);
            }
        }
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        let &[variant, a, b] = words.first_chunk::<3>()?;
        match variant {
            0 if b == 0 => Some(Pte::Table { next: a }),
            1 => {
                let size = PageSize::decode_words(&[b])?;
                Some(Pte::Leaf { target: a, size })
            }
            _ => None,
        }
    }
}

impl WordCodec for WalkCacheKey {
    const WORDS: usize = 2;

    fn encode_words(&self, out: &mut Vec<u64>) {
        self.did.encode_words(out);
        out.push(self.tag);
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        let (did_words, rest) = words.split_at_checked(1)?;
        let did = hypersio_types::Did::decode_words(did_words)?;
        let tag = *rest.first()?;
        Some(WalkCacheKey { did, tag })
    }
}

impl WordCodec for NestedKey {
    const WORDS: usize = 2;

    fn encode_words(&self, out: &mut Vec<u64>) {
        self.did.encode_words(out);
        out.push(self.gfn);
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        let (did_words, rest) = words.split_at_checked(1)?;
        let did = hypersio_types::Did::decode_words(did_words)?;
        let gfn = *rest.first()?;
        Some(NestedKey { did, gfn })
    }
}

impl WordCodec for ContextEntry {
    const WORDS: usize = 1;

    fn encode_words(&self, out: &mut Vec<u64>) {
        self.did().encode_words(out);
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        Some(ContextEntry::new(hypersio_types::Did::decode_words(words)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersio_types::Did;

    fn round_trip<T: WordCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut words = Vec::new();
        value.encode_words(&mut words);
        assert_eq!(words.len(), T::WORDS);
        assert_eq!(T::decode_words(&words), Some(value));
    }

    #[test]
    fn ptes_round_trip() {
        round_trip(Pte::Table { next: 0x4000 });
        round_trip(Pte::Leaf {
            target: 0x20_0000,
            size: PageSize::Size2M,
        });
        round_trip(Pte::Leaf {
            target: 0,
            size: PageSize::Size1G,
        });
    }

    #[test]
    fn corrupt_ptes_are_rejected() {
        assert_eq!(Pte::decode_words(&[2, 0, 0]), None); // bad variant
        assert_eq!(Pte::decode_words(&[0, 7, 1]), None); // table with junk
        assert_eq!(Pte::decode_words(&[1, 7, 13]), None); // bad page shift
        assert_eq!(Pte::decode_words(&[0, 7]), None); // truncated
    }

    #[test]
    fn keys_round_trip() {
        round_trip(WalkCacheKey {
            did: Did::new(77),
            tag: 0xbbe0_0000 >> 21,
        });
        round_trip(NestedKey {
            did: Did::new(3),
            gfn: 0x8000_1234 >> 12,
        });
        round_trip(ContextEntry::new(Did::new(9)));
    }

    #[test]
    fn oversized_dids_are_rejected() {
        assert_eq!(WalkCacheKey::decode_words(&[1 << 33, 0]), None);
        assert_eq!(NestedKey::decode_words(&[1 << 33, 0]), None);
        assert_eq!(ContextEntry::decode_words(&[1 << 33]), None);
    }
}
