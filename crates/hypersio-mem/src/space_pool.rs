//! Tenant-space pools: eager (dense) or lazy with budgeted residency.
//!
//! A [`SpacePool`] is the IOMMU's view of "which tenants have page
//! tables". The dense variant is the classic eager construction — every
//! tenant's [`TenantSpace`] built up front, indexed by DID — and is what
//! all paper-scale (≤ 1024 tenants) runs use. The lazy variant holds only
//! the canonical build and stamps a tenant's tables on first touch,
//! evicting the least-recently-touched resident space when a host-memory
//! budget would be exceeded. That is what makes million-tenant runs fit in
//! bounded RSS: per-tenant cost collapses to a trace lane plus (while
//! resident) one rebased host table.
//!
//! Eviction is *transparent to the model*: stamping is deterministic
//! ([`TenantSpace::stamp`]), so a rebuilt space is bit-identical to the
//! evicted one and every cached translation (DevTLB, walk caches, memo)
//! remains correct without shootdowns. Eviction models the simulator
//! reclaiming its own memory, not the hypervisor unmapping a tenant.

use std::collections::VecDeque;

use hypersio_types::fxhash::FxBuildHasher;
use hypersio_types::Did;

use crate::space::TenantSpace;

type FxMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Counters describing a pool's build/eviction behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Spaces stamped on demand (0 for a dense pool).
    pub builds: u64,
    /// Spaces evicted to stay under the budget.
    pub evictions: u64,
    /// Spaces currently resident.
    pub resident: usize,
    /// Residency cap derived from the budget (`usize::MAX` = unbounded).
    pub max_resident: usize,
}

/// A pool of per-tenant address spaces, eager or lazily materialised.
///
/// # Examples
///
/// ```
/// use hypersio_mem::{SpacePool, TenantSpace};
/// use hypersio_types::{Did, GIova, PageSize};
///
/// let mut b = TenantSpace::builder(Did::new(0));
/// b.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
/// let canonical = b.build();
/// // Budget for roughly two resident tenants out of 100.
/// let budget = canonical.per_tenant_bytes() * 2;
/// let mut pool = SpacePool::lazy(canonical, 100, Some(budget));
/// pool.ensure(Did::new(77));
/// assert!(pool.get(Did::new(77)).lookup(GIova::new(0xbbe0_0042)).is_some());
/// assert_eq!(pool.stats().builds, 1);
/// ```
pub struct SpacePool {
    variant: Variant,
}

enum Variant {
    Dense(Vec<TenantSpace>),
    Lazy(Box<LazyPool>),
}

struct LazyPool {
    /// The canonical (DID-0, slab-0) build every space is stamped from.
    canonical: TenantSpace,
    tenants: u32,
    resident: FxMap<u32, TenantSpace>,
    /// Tick of each resident space's most recent touch.
    last_touch: FxMap<u32, u64>,
    /// Touch order, oldest first; entries whose tick no longer matches
    /// `last_touch` are stale and skipped (lazy deletion). Compacted when
    /// it outgrows the resident set so memory stays bounded.
    lru: VecDeque<(u64, u32)>,
    /// Current host slab of tenants migrated away from their default
    /// (`slab == did`); consulted when re-stamping after eviction.
    slab_overrides: FxMap<u32, u64>,
    max_resident: usize,
    tick: u64,
    builds: u64,
    evictions: u64,
}

impl SpacePool {
    /// Wraps eagerly built spaces; `spaces[i]` must belong to `Did(i)`.
    ///
    /// # Panics
    ///
    /// Panics if the spaces are not indexed by DID.
    pub fn dense(spaces: Vec<TenantSpace>) -> Self {
        for (i, space) in spaces.iter().enumerate() {
            assert!(
                space.did().index() == i,
                "spaces must be indexed by DID: slot {i} holds {}",
                space.did()
            );
        }
        SpacePool {
            variant: Variant::Dense(spaces),
        }
    }

    /// Creates a lazy pool over `tenants` tenants stamped on demand from
    /// `canonical` (a slab-0 build of the shared page inventory).
    ///
    /// `budget_bytes` caps the resident spaces' estimated heap footprint
    /// ([`TenantSpace::per_tenant_bytes`] each); at least one space is
    /// always allowed. `None` means unbounded residency (lazy build, no
    /// eviction).
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn lazy(canonical: TenantSpace, tenants: u32, budget_bytes: Option<u64>) -> Self {
        assert!(tenants > 0, "at least one tenant is required");
        let per_space = canonical.per_tenant_bytes().max(1);
        let max_resident = match budget_bytes {
            None => usize::MAX,
            Some(b) => ((b / per_space) as usize).max(1),
        };
        SpacePool {
            variant: Variant::Lazy(Box::new(LazyPool {
                canonical,
                tenants,
                resident: FxMap::default(),
                last_touch: FxMap::default(),
                lru: VecDeque::new(),
                slab_overrides: FxMap::default(),
                max_resident,
                tick: 0,
                builds: 0,
                evictions: 0,
            })),
        }
    }

    /// Returns the number of tenants the pool can serve.
    pub fn tenants(&self) -> u32 {
        match &self.variant {
            Variant::Dense(spaces) => spaces.len() as u32,
            Variant::Lazy(pool) => pool.tenants,
        }
    }

    /// Returns whether this pool materialises spaces lazily.
    pub fn is_lazy(&self) -> bool {
        matches!(self.variant, Variant::Lazy(_))
    }

    /// Makes `did`'s space resident (stamping and, if needed, evicting)
    /// and refreshes its recency. Returns `true` when the space was newly
    /// built — the caller owes the on-demand context-entry install.
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range.
    pub fn ensure(&mut self, did: Did) -> bool {
        let pool = match &mut self.variant {
            Variant::Dense(spaces) => {
                assert!(did.index() < spaces.len(), "unknown tenant {did}");
                return false;
            }
            Variant::Lazy(pool) => pool,
        };
        assert!(did.raw() < pool.tenants, "unknown tenant {did}");
        let key = did.raw();
        pool.tick += 1;
        let tick = pool.tick;
        if pool.resident.contains_key(&key) {
            pool.last_touch.insert(key, tick);
            pool.push_lru(tick, key);
            return false;
        }
        while pool.resident.len() >= pool.max_resident {
            match pool.lru.pop_front() {
                Some((t, d)) if pool.last_touch.get(&d) == Some(&t) => {
                    pool.resident.remove(&d);
                    pool.last_touch.remove(&d);
                    pool.evictions += 1;
                }
                Some(_) => continue, // stale entry, skip
                None => break,       // resident map and LRU out of sync: bug
            }
        }
        let slab = pool.slab_overrides.get(&key).copied().unwrap_or(key as u64);
        pool.resident.insert(key, pool.canonical.stamp(did, slab));
        pool.last_touch.insert(key, tick);
        pool.push_lru(tick, key);
        pool.builds += 1;
        true
    }

    /// Returns `did`'s space. Lazy pools require a preceding
    /// [`SpacePool::ensure`] for the same DID (the translate path always
    /// pairs them).
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range, or (lazy) not resident.
    pub fn get(&self, did: Did) -> &TenantSpace {
        match &self.variant {
            Variant::Dense(spaces) => &spaces[did.index()],
            Variant::Lazy(pool) => pool
                .resident
                .get(&did.raw())
                .expect("ensure() must materialise a space before get()"),
        }
    }

    /// Relocates `did`'s host-side memory to slab `slab` (see
    /// [`TenantSpace::migrate_to_slab`]). For a lazy pool the new slab is
    /// also recorded so a post-eviction rebuild re-stamps at the tenant's
    /// *current* home, not its original one.
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range.
    pub fn migrate(&mut self, did: Did, slab: u64) {
        match &mut self.variant {
            Variant::Dense(spaces) => spaces[did.index()].migrate_to_slab(slab),
            Variant::Lazy(pool) => {
                assert!(did.raw() < pool.tenants, "unknown tenant {did}");
                pool.slab_overrides.insert(did.raw(), slab);
                if let Some(space) = pool.resident.get_mut(&did.raw()) {
                    space.migrate_to_slab(slab);
                }
            }
        }
    }

    /// Returns build/eviction counters.
    pub fn stats(&self) -> PoolStats {
        match &self.variant {
            Variant::Dense(spaces) => PoolStats {
                builds: 0,
                evictions: 0,
                resident: spaces.len(),
                max_resident: usize::MAX,
            },
            Variant::Lazy(pool) => PoolStats {
                builds: pool.builds,
                evictions: pool.evictions,
                resident: pool.resident.len(),
                max_resident: pool.max_resident,
            },
        }
    }

    /// The dense pool's DID-indexed spaces.
    ///
    /// # Panics
    ///
    /// Panics on a lazy pool, whose resident set is not dense.
    pub fn dense_spaces(&self) -> &[TenantSpace] {
        match &self.variant {
            Variant::Dense(spaces) => spaces,
            Variant::Lazy(_) => panic!("a lazy pool has no dense space slice"),
        }
    }

    /// DIDs of currently resident spaces, ascending (dense: every tenant).
    pub fn resident_dids(&self) -> Vec<Did> {
        match &self.variant {
            Variant::Dense(spaces) => (0..spaces.len() as u32).map(Did::new).collect(),
            Variant::Lazy(pool) => {
                let mut dids: Vec<u32> = pool.resident.keys().copied().collect();
                dids.sort_unstable();
                dids.into_iter().map(Did::new).collect()
            }
        }
    }

    /// Halves a lazy pool's residency cap (never below one space) and
    /// evicts least-recently-touched spaces until the survivors fit —
    /// the graceful-degradation response to host memory pressure. Safe
    /// because eviction is model-transparent (see the module docs): a
    /// later touch re-stamps a bit-identical space. Returns the number of
    /// spaces evicted; a dense pool is untouched and returns 0.
    pub fn shrink_residency(&mut self) -> u64 {
        let pool = match &mut self.variant {
            Variant::Dense(_) => return 0,
            Variant::Lazy(pool) => pool,
        };
        pool.max_resident = (pool.max_resident / 2).max(1);
        let before = pool.evictions;
        while pool.resident.len() > pool.max_resident {
            match pool.lru.pop_front() {
                Some((t, d)) if pool.last_touch.get(&d) == Some(&t) => {
                    pool.resident.remove(&d);
                    pool.last_touch.remove(&d);
                    pool.evictions += 1;
                }
                Some(_) => continue, // stale entry, skip
                None => break,       // resident map and LRU out of sync: bug
            }
        }
        pool.evictions - before
    }

    /// Appends the pool's mutable state to a checkpoint stream: slab
    /// placement for a dense pool; residency metadata (recency order,
    /// slab overrides, counters) for a lazy one. Resident spaces are
    /// *not* serialised — stamping is deterministic, so restore rebuilds
    /// them bit-identically from the canonical build.
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        match &self.variant {
            Variant::Dense(spaces) => {
                out.push(0);
                out.push(spaces.len() as u64);
                let moved: Vec<(u64, u64)> = spaces
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| s.host_slab() != *i as u64)
                    .map(|(i, s)| (i as u64, s.host_slab()))
                    .collect();
                out.push(moved.len() as u64);
                for (did, slab) in moved {
                    out.push(did);
                    out.push(slab);
                }
            }
            Variant::Lazy(pool) => {
                out.push(1);
                out.push(pool.tenants as u64);
                out.push(pool.max_resident as u64);
                out.push(pool.tick);
                out.push(pool.builds);
                out.push(pool.evictions);
                let mut overrides: Vec<(u32, u64)> =
                    pool.slab_overrides.iter().map(|(&d, &s)| (d, s)).collect();
                overrides.sort_unstable();
                out.push(overrides.len() as u64);
                for (did, slab) in overrides {
                    out.push(did as u64);
                    out.push(slab);
                }
                let mut resident: Vec<(u32, u64)> =
                    pool.last_touch.iter().map(|(&d, &t)| (d, t)).collect();
                resident.sort_unstable();
                out.push(resident.len() as u64);
                for (did, touched) in resident {
                    out.push(did as u64);
                    out.push(touched);
                }
                out.push(pool.lru.len() as u64);
                for &(tick, did) in pool.lru.iter() {
                    out.push(tick);
                    out.push(did as u64);
                }
            }
        }
    }

    /// Restores state captured by [`Self::snapshot_words`] into a freshly
    /// constructed pool of the same shape (variant, tenant count, dense
    /// spaces at their default slabs). Lazy residents are re-stamped from
    /// the canonical build at their recorded slabs. Returns `None` on a
    /// corrupt stream or a shape mismatch.
    pub fn restore_words(&mut self, r: &mut hypersio_cache::WordReader<'_>) -> Option<()> {
        match (r.next()?, &mut self.variant) {
            (0, Variant::Dense(spaces)) => {
                if r.next()? != spaces.len() as u64 {
                    return None;
                }
                let moved = r.len_capped(spaces.len())?;
                for _ in 0..moved {
                    let did = usize::try_from(r.next()?).ok()?;
                    let slab = r.next()?;
                    spaces.get_mut(did)?.migrate_to_slab(slab);
                }
                Some(())
            }
            (1, Variant::Lazy(pool)) => {
                if r.next()? != pool.tenants as u64 {
                    return None;
                }
                pool.max_resident = usize::try_from(r.next()?).ok()?;
                if pool.max_resident == 0 {
                    return None;
                }
                pool.tick = r.next()?;
                pool.builds = r.next()?;
                pool.evictions = r.next()?;
                pool.slab_overrides.clear();
                let overrides = r.len_capped(r.remaining() / 2)?;
                for _ in 0..overrides {
                    let did = u32::try_from(r.next()?).ok()?;
                    if did >= pool.tenants {
                        return None;
                    }
                    let slab = r.next()?;
                    pool.slab_overrides.insert(did, slab);
                }
                pool.resident.clear();
                pool.last_touch.clear();
                let resident = r.len_capped(r.remaining() / 2)?;
                if resident > pool.max_resident {
                    return None;
                }
                for _ in 0..resident {
                    let did = u32::try_from(r.next()?).ok()?;
                    if did >= pool.tenants {
                        return None;
                    }
                    let touched = r.next()?;
                    let slab = pool.slab_overrides.get(&did).copied().unwrap_or(did as u64);
                    let space = pool.canonical.stamp(Did::new(did), slab);
                    pool.resident.insert(did, space);
                    pool.last_touch.insert(did, touched);
                }
                pool.lru.clear();
                let lru = r.len_capped(r.remaining() / 2)?;
                for _ in 0..lru {
                    let tick = r.next()?;
                    let did = u32::try_from(r.next()?).ok()?;
                    pool.lru.push_back((tick, did));
                }
                Some(())
            }
            _ => None,
        }
    }
}

impl LazyPool {
    fn push_lru(&mut self, tick: u64, did: u32) {
        self.lru.push_back((tick, did));
        // Lazy deletion leaves stale entries behind; compact once they
        // dominate so the queue stays O(resident).
        if self.lru.len() > 2 * self.resident.len().max(32) {
            let last = &self.last_touch;
            self.lru.retain(|&(t, d)| last.get(&d) == Some(&t));
        }
    }
}

impl std::fmt::Debug for SpacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SpacePool")
            .field("lazy", &self.is_lazy())
            .field("tenants", &self.tenants())
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersio_types::{GIova, PageSize};

    fn canonical() -> TenantSpace {
        let mut b = TenantSpace::builder(Did::new(0));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        b.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        b.build()
    }

    fn budget_for(spaces: usize) -> Option<u64> {
        Some(canonical().per_tenant_bytes() * spaces as u64)
    }

    #[test]
    fn lazy_pool_matches_dense_translations() {
        let dids: Vec<Did> = (0..8).map(Did::new).collect();
        let dense = SpacePool::dense(
            TenantSpace::builder(Did::new(0))
                .map(GIova::new(0x3480_0000), PageSize::Size4K)
                .map(GIova::new(0xbbe0_0000), PageSize::Size2M)
                .build_many(&dids),
        );
        let mut lazy = SpacePool::lazy(canonical(), 8, budget_for(2));
        for &did in &dids {
            lazy.ensure(did);
            let iova = GIova::new(0xbbe0_0042);
            assert_eq!(
                lazy.get(did).lookup(iova).unwrap(),
                dense.get(did).lookup(iova).unwrap(),
                "{did}"
            );
        }
    }

    #[test]
    fn budget_caps_residency_and_evicts_lru() {
        let mut pool = SpacePool::lazy(canonical(), 100, budget_for(2));
        assert!(pool.ensure(Did::new(0)));
        assert!(pool.ensure(Did::new(1)));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(!pool.ensure(Did::new(0)));
        assert!(pool.ensure(Did::new(2)));
        let stats = pool.stats();
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.max_resident, 2);
        // 1 was evicted; re-touching rebuilds it.
        assert!(pool.ensure(Did::new(1)));
        assert_eq!(pool.stats().builds, 4);
    }

    #[test]
    fn rebuild_after_eviction_is_bit_identical() {
        let mut pool = SpacePool::lazy(canonical(), 100, budget_for(1));
        pool.ensure(Did::new(7));
        let before = pool
            .get(Did::new(7))
            .lookup(GIova::new(0xbbe0_0042))
            .unwrap();
        let layout_before = pool.get(Did::new(7)).layout_id();
        pool.ensure(Did::new(8)); // evicts 7
        pool.ensure(Did::new(7)); // rebuilds 7
        let space = pool.get(Did::new(7));
        assert_eq!(space.lookup(GIova::new(0xbbe0_0042)).unwrap(), before);
        assert_eq!(
            space.layout_id(),
            layout_before,
            "memo sharing must survive"
        );
    }

    #[test]
    fn migration_survives_eviction() {
        let mut pool = SpacePool::lazy(canonical(), 100, budget_for(1));
        pool.ensure(Did::new(3));
        pool.migrate(Did::new(3), 55);
        let after_migrate = pool
            .get(Did::new(3))
            .lookup(GIova::new(0xbbe0_0000))
            .unwrap();
        pool.ensure(Did::new(4)); // evicts 3
        pool.ensure(Did::new(3)); // rebuild must land in slab 55
        assert_eq!(pool.get(Did::new(3)).host_slab(), 55);
        assert_eq!(
            pool.get(Did::new(3))
                .lookup(GIova::new(0xbbe0_0000))
                .unwrap(),
            after_migrate
        );
    }

    #[test]
    fn migrating_a_nonresident_tenant_records_the_override() {
        let mut pool = SpacePool::lazy(canonical(), 100, budget_for(4));
        pool.migrate(Did::new(9), 70);
        pool.ensure(Did::new(9));
        assert_eq!(pool.get(Did::new(9)).host_slab(), 70);
    }

    #[test]
    fn unbounded_lazy_pool_never_evicts() {
        let mut pool = SpacePool::lazy(canonical(), 1000, None);
        for i in 0..200 {
            pool.ensure(Did::new(i));
        }
        let stats = pool.stats();
        assert_eq!(stats.resident, 200);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn lru_queue_stays_bounded_under_retouch() {
        let mut pool = SpacePool::lazy(canonical(), 10, budget_for(4));
        for round in 0..10_000u32 {
            pool.ensure(Did::new(round % 4));
        }
        if let Variant::Lazy(inner) = &pool.variant {
            assert!(
                inner.lru.len() <= 2 * inner.resident.len().max(32) + 1,
                "lru queue grew to {}",
                inner.lru.len()
            );
        } else {
            unreachable!();
        }
    }

    #[test]
    fn lazy_matches_eager_under_sv39x4() {
        use crate::WalkGeometry;
        // Satellite check: lazy stamping must be identity-preserving for
        // the widened-root geometry too, at both thrash scales.
        for tenants in [128u32, 1024] {
            let dids: Vec<Did> = (0..tenants).map(Did::new).collect();
            let mut b = TenantSpace::builder(Did::new(0));
            b.geometry(WalkGeometry::RiscvSv39x4)
                .map(GIova::new(0x3480_0000), PageSize::Size4K)
                .map(GIova::new(0xbbe0_0000), PageSize::Size2M);
            let eager = SpacePool::dense(b.build_many(&dids));
            let canonical = {
                let mut b = TenantSpace::builder(Did::new(0));
                b.geometry(WalkGeometry::RiscvSv39x4)
                    .map(GIova::new(0x3480_0000), PageSize::Size4K)
                    .map(GIova::new(0xbbe0_0000), PageSize::Size2M);
                b.build()
            };
            let budget = Some(canonical.per_tenant_bytes() * 3);
            let mut lazy = SpacePool::lazy(canonical, tenants, budget);
            for &did in &dids {
                lazy.ensure(did);
                for iova in [GIova::new(0x3480_0123), GIova::new(0xbbe4_5678)] {
                    assert_eq!(
                        lazy.get(did).lookup(iova).unwrap(),
                        eager.get(did).lookup(iova).unwrap(),
                        "{did} {tenants} tenants"
                    );
                }
                assert_eq!(lazy.get(did).geometry(), WalkGeometry::RiscvSv39x4);
            }
            assert!(lazy.stats().evictions > 0, "budget should force evictions");
        }
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn out_of_range_did_rejected() {
        let mut pool = SpacePool::lazy(canonical(), 4, None);
        pool.ensure(Did::new(4));
    }

    #[test]
    #[should_panic(expected = "indexed by DID")]
    fn dense_pool_requires_did_indexing() {
        let mut b = TenantSpace::builder(Did::new(3));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        let _ = SpacePool::dense(vec![b.build()]);
    }
}
