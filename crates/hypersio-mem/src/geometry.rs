//! Architecture-parameterized two-stage walk geometry.
//!
//! HyperTRIO's cost model — "24 or 35 memory accesses for 4- or 5-level
//! page tables" — is a property of the *walk geometry*: how many radix
//! levels each translation dimension has, how wide each level's index is,
//! and which levels may hold superpage leaves. [`WalkGeometry`] captures
//! that shape so every layer (table placement, nested walker, walk caches,
//! memo keys) derives its constants from one source instead of assuming
//! the x86 form.
//!
//! Two ISA families are modelled:
//!
//! - **x86 nested paging** (`X86Nested4`, `X86Nested5`): symmetric 4- or
//!   5-level tables in both dimensions, 9-bit indices, 512-entry nodes.
//! - **RISC-V H-extension** (`RiscvSv39x4`, `RiscvSv48x4`): the VS-stage
//!   (guest) table is a standard Sv39/Sv48 table, while the G-stage (host)
//!   table's *root* level is widened by 2 bits — 2048 entries, a 16 KiB
//!   root node — so guest-physical addresses gain two extra bits of reach
//!   (the `x4` in Sv39x4). Non-root levels stay 9-bit.
//!
//! Every supported geometry uses 9-bit non-root indices over a 12-bit page
//! offset, so level 1 always spans 4 KiB, level 2 always spans 2 MiB, and
//! level 3 always spans 1 GiB. The walk caches exploit this: their level
//! tags (`iova >> 21`, `iova >> 30`) are geometry-independent.

use std::fmt;

/// The shape of a two-stage (guest x host) radix walk.
///
/// The default is [`WalkGeometry::X86Nested4`], the paper's configuration;
/// all committed goldens are pinned under it.
///
/// # Examples
///
/// ```
/// use hypersio_mem::WalkGeometry;
///
/// let g = WalkGeometry::RiscvSv39x4;
/// assert_eq!(g.guest_levels(), 3);
/// assert_eq!(g.host_root_extra_bits(), 2);
/// assert_eq!(g.full_walk_reads(), 15); // 3x(3+1) + 3
/// assert_eq!("sv39x4".parse::<WalkGeometry>().unwrap(), g);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WalkGeometry {
    /// x86-64 nested paging, 4-level tables in both dimensions (the
    /// paper's configuration: 24-access cold walk).
    #[default]
    X86Nested4,
    /// x86-64 nested paging with 5-level (LA57) tables in both dimensions
    /// (35-access cold walk).
    X86Nested5,
    /// RISC-V hypervisor extension: Sv39 VS-stage over an Sv39x4 G-stage
    /// (3 levels each, G-stage root widened by 2 bits).
    RiscvSv39x4,
    /// RISC-V hypervisor extension: Sv48 VS-stage over an Sv48x4 G-stage
    /// (4 levels each, G-stage root widened by 2 bits).
    RiscvSv48x4,
}

impl WalkGeometry {
    /// All supported geometries, in CLI-name order.
    pub const ALL: [WalkGeometry; 4] = [
        WalkGeometry::X86Nested4,
        WalkGeometry::X86Nested5,
        WalkGeometry::RiscvSv39x4,
        WalkGeometry::RiscvSv48x4,
    ];

    /// Number of levels in the guest (first-stage / VS-stage) table.
    pub const fn guest_levels(self) -> u8 {
        match self {
            WalkGeometry::X86Nested4 => 4,
            WalkGeometry::X86Nested5 => 5,
            WalkGeometry::RiscvSv39x4 => 3,
            WalkGeometry::RiscvSv48x4 => 4,
        }
    }

    /// Number of levels in the host (second-stage / G-stage) table.
    pub const fn host_levels(self) -> u8 {
        match self {
            WalkGeometry::X86Nested4 => 4,
            WalkGeometry::X86Nested5 => 5,
            WalkGeometry::RiscvSv39x4 => 3,
            WalkGeometry::RiscvSv48x4 => 4,
        }
    }

    /// Extra index bits in the host table's root level.
    ///
    /// RISC-V's G-stage root is widened by 2 bits (2048 entries, a 16 KiB
    /// root node) so guest-physical addresses get two more bits of reach
    /// than guest-virtual ones; x86 roots are not widened.
    pub const fn host_root_extra_bits(self) -> u8 {
        match self {
            WalkGeometry::X86Nested4 | WalkGeometry::X86Nested5 => 0,
            WalkGeometry::RiscvSv39x4 | WalkGeometry::RiscvSv48x4 => 2,
        }
    }

    /// Index bits per non-root level (9 in every supported geometry:
    /// 512-entry nodes).
    pub const fn level_bits(self) -> u8 {
        9
    }

    /// Page-offset bits (12 in every supported geometry: 4 KiB base
    /// pages).
    pub const fn page_offset_bits(self) -> u8 {
        12
    }

    /// Table levels that may hold a superpage leaf, smallest first.
    ///
    /// Level 1 is the 4 KiB base page; level 2 spans 2 MiB; level 3 spans
    /// 1 GiB. x86 and RISC-V both support all three in these geometries
    /// (Sv39's 1 GiB "gigapage" leaf sits in its root level).
    pub const fn leaf_levels(self) -> &'static [u8] {
        &[1, 2, 3]
    }

    /// Returns true if `level` may hold a leaf in this geometry.
    pub const fn supports_leaf_level(self, level: u8) -> bool {
        level >= 1 && level <= 3 && level <= self.guest_levels()
    }

    /// Memory reads of one cold two-dimensional walk with a 4 KiB guest
    /// leaf: each of the `G` guest PTE reads costs a nested host walk
    /// (`H` reads) plus the guest PTE read itself, and the final data
    /// guest-physical address costs one more host walk — `G x (H + 1) + H`
    /// (equal to the paper's `G x (H + 1) + G` form since every supported
    /// geometry is symmetric).
    ///
    /// This is the "24 or 35 accesses" number: 24 for x86-4, 35 for
    /// x86-5, 15 for Sv39x4, 24 for Sv48x4.
    pub const fn full_walk_reads(self) -> u64 {
        self.walk_reads_from(self.guest_levels(), 1)
    }

    /// Memory reads of a two-dimensional walk that starts at guest level
    /// `start_level` (the full `guest_levels()` when nothing was skipped,
    /// lower after a walk-cache hit) and terminates at the guest leaf
    /// level `leaf_level` (1 for 4 KiB, 2 for 2 MiB, 3 for 1 GiB), with
    /// every nested host walk going cold: `S x (H + 1) + H` where
    /// `S = start_level - leaf_level + 1` guest steps.
    pub const fn walk_reads_from(self, start_level: u8, leaf_level: u8) -> u64 {
        let steps = (start_level - leaf_level + 1) as u64;
        let h = self.host_levels() as u64;
        steps * (h + 1) + h
    }

    /// The `--arch` spelling of this geometry.
    pub const fn cli_name(self) -> &'static str {
        match self {
            WalkGeometry::X86Nested4 => "x86-4",
            WalkGeometry::X86Nested5 => "x86-5",
            WalkGeometry::RiscvSv39x4 => "sv39x4",
            WalkGeometry::RiscvSv48x4 => "sv48x4",
        }
    }

    /// A small stable discriminant, used to key the walk memo so paths
    /// memoized under one geometry can never serve another.
    pub const fn id(self) -> u8 {
        match self {
            WalkGeometry::X86Nested4 => 0,
            WalkGeometry::X86Nested5 => 1,
            WalkGeometry::RiscvSv39x4 => 2,
            WalkGeometry::RiscvSv48x4 => 3,
        }
    }
}

impl fmt::Display for WalkGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cli_name())
    }
}

impl std::str::FromStr for WalkGeometry {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        for g in WalkGeometry::ALL {
            if s == g.cli_name() {
                return Ok(g);
            }
        }
        Err(format!(
            "unknown architecture '{s}' (expected one of: x86-4, x86-5, sv39x4, sv48x4)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_walk_costs() {
        assert_eq!(WalkGeometry::X86Nested4.full_walk_reads(), 24);
        assert_eq!(WalkGeometry::X86Nested5.full_walk_reads(), 35);
        assert_eq!(WalkGeometry::RiscvSv39x4.full_walk_reads(), 15);
        assert_eq!(WalkGeometry::RiscvSv48x4.full_walk_reads(), 24);
        // The paper's symmetric form G x (H + 1) + G agrees.
        for g in WalkGeometry::ALL {
            let (gl, hl) = (g.guest_levels() as u64, g.host_levels() as u64);
            assert_eq!(g.full_walk_reads(), gl * (hl + 1) + gl);
        }
    }

    #[test]
    fn partial_walk_costs() {
        // x86-4, 2 MiB leaf: 3 guest steps of 5 plus the final host walk.
        assert_eq!(WalkGeometry::X86Nested4.walk_reads_from(4, 2), 19);
        // x86-4 after an L2 walk-cache hit: one guest step remains.
        assert_eq!(WalkGeometry::X86Nested4.walk_reads_from(1, 1), 9);
        // Sv39x4, 1 GiB leaf at the root: one guest step of 4 plus 3.
        assert_eq!(WalkGeometry::RiscvSv39x4.walk_reads_from(3, 3), 7);
    }

    #[test]
    fn riscv_widens_only_the_host_root() {
        for g in [WalkGeometry::RiscvSv39x4, WalkGeometry::RiscvSv48x4] {
            assert_eq!(g.host_root_extra_bits(), 2);
            assert_eq!(g.level_bits(), 9);
        }
        for g in [WalkGeometry::X86Nested4, WalkGeometry::X86Nested5] {
            assert_eq!(g.host_root_extra_bits(), 0);
        }
    }

    #[test]
    fn cli_names_round_trip() {
        for g in WalkGeometry::ALL {
            assert_eq!(g.cli_name().parse::<WalkGeometry>().unwrap(), g);
            assert_eq!(format!("{g}"), g.cli_name());
        }
        let err = "sv57".parse::<WalkGeometry>().unwrap_err();
        assert!(err.contains("sv39x4"), "{err}");
    }

    #[test]
    fn default_is_the_paper_geometry() {
        assert_eq!(WalkGeometry::default(), WalkGeometry::X86Nested4);
        assert_eq!(WalkGeometry::default().full_walk_reads(), 24);
    }

    #[test]
    fn ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for g in WalkGeometry::ALL {
            assert!(seen.insert(g.id()));
        }
    }

    #[test]
    fn leaf_levels_are_bounded_by_guest_depth() {
        // Sv39's guest table is 3 levels deep, so its largest leaf (1 GiB)
        // sits in the root level.
        assert!(WalkGeometry::RiscvSv39x4.supports_leaf_level(3));
        assert!(!WalkGeometry::RiscvSv39x4.supports_leaf_level(4));
        assert!(!WalkGeometry::X86Nested4.supports_leaf_level(0));
        for g in WalkGeometry::ALL {
            for &l in g.leaf_levels() {
                assert!(l <= g.guest_levels() || !g.supports_leaf_level(l));
            }
        }
    }
}
