//! Synthetic radix page tables with concretely-placed nodes.
//!
//! Unlike a plain `HashMap<page, frame>`, these tables place every table
//! node at a real address in the owning address space, so a walker can
//! enumerate the exact sequence of memory reads hardware would issue —
//! including the reads of the table nodes themselves, which is what makes
//! the nested (two-dimensional) walk cost 24 accesses instead of 4.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use hypersio_types::PageSize;

use hypersio_types::fxhash::FxBuildHasher;

/// Number of entries per radix node (x86-64: 512 = 9 bits per level).
pub const RADIX: usize = 512;

/// Size in bytes of one page-table entry.
pub const PTE_BYTES: u64 = 8;

/// One page-table entry.
///
/// # Examples
///
/// ```
/// use hypersio_mem::Pte;
/// use hypersio_types::PageSize;
///
/// let leaf = Pte::Leaf { target: 0x20_0000, size: PageSize::Size2M };
/// assert!(leaf.is_leaf());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pte {
    /// Pointer to the next-level table node (its base address in the owning
    /// address space).
    Table {
        /// Base address of the next-level node.
        next: u64,
    },
    /// Terminal mapping to a page frame.
    Leaf {
        /// Base address of the mapped frame in the target address space.
        target: u64,
        /// Size of the mapped page.
        size: PageSize,
    },
}

impl Pte {
    /// Returns true for a leaf (terminal) entry.
    pub const fn is_leaf(self) -> bool {
        matches!(self, Pte::Leaf { .. })
    }
}

/// Errors from building or walking a [`RadixTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageTableError {
    /// The virtual address is not mapped.
    NotMapped {
        /// The unmapped virtual address.
        va: u64,
        /// The level at which the walk found no entry.
        level: u8,
    },
    /// A mapping would overlap an existing one.
    AlreadyMapped {
        /// The conflicting virtual address.
        va: u64,
    },
    /// A huge-page leaf was found where a table pointer was required (or
    /// vice versa) while inserting.
    LevelConflict {
        /// The conflicting virtual address.
        va: u64,
        /// The level at which the conflict occurred.
        level: u8,
    },
}

impl fmt::Display for PageTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageTableError::NotMapped { va, level } => {
                write!(
                    f,
                    "address {va:#x} not mapped (walk stopped at level {level})"
                )
            }
            PageTableError::AlreadyMapped { va } => {
                write!(f, "address {va:#x} already mapped")
            }
            PageTableError::LevelConflict { va, level } => {
                write!(f, "mapping conflict for {va:#x} at level {level}")
            }
        }
    }
}

impl Error for PageTableError {}

/// The ordered PTE reads of one single-dimensional walk.
///
/// `pte_addrs[i]` is the address (in the table's owning address space) of
/// the PTE read at step `i`, root level first. The final element corresponds
/// to the leaf. A 4 KB walk on a 4-level table has 4 steps; a 2 MB walk has
/// 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkPath {
    /// Addresses of the PTEs read, in walk order.
    pub pte_addrs: Vec<u64>,
    /// The PTEs read, in walk order (last one is the leaf).
    pub ptes: Vec<Pte>,
    /// Base address of the mapped frame.
    pub target_base: u64,
    /// Size of the mapped page.
    pub size: PageSize,
}

impl WalkPath {
    /// Translated address for `va`: frame base plus in-page offset.
    pub fn translate(&self, va: u64) -> u64 {
        self.target_base + (va & self.size.offset_mask())
    }
}

/// Maximum modelled table depth: 5-level x86 paging is the deepest
/// dimension of any supported [`crate::WalkGeometry`] (RISC-V Sv39x4/Sv48x4
/// walks are 3 or 4 steps; the G-stage root widening adds index *width*,
/// not depth).
const MAX_LEVELS: usize = 5;

/// An allocation-free [`WalkPath`]: the same ordered PTE reads, held in
/// fixed-size inline arrays instead of heap `Vec`s.
///
/// The two-dimensional walker performs several single-dimensional walks per
/// translation; returning this by value keeps the whole translate hot path
/// free of heap traffic. Convert with [`InlineWalkPath::to_walk_path`] when
/// a heap-backed path is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineWalkPath {
    len: u8,
    pte_addrs: [u64; MAX_LEVELS],
    ptes: [Pte; MAX_LEVELS],
    /// Base address of the mapped frame.
    pub target_base: u64,
    /// Size of the mapped page.
    pub size: PageSize,
}

impl InlineWalkPath {
    /// Number of PTE reads in the walk (root level first).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns true if the path holds no steps (never produced by a
    /// successful walk).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Addresses of the PTEs read, in walk order.
    pub fn pte_addrs(&self) -> &[u64] {
        &self.pte_addrs[..self.len as usize]
    }

    /// The PTEs read, in walk order (last one is the leaf).
    pub fn ptes(&self) -> &[Pte] {
        &self.ptes[..self.len as usize]
    }

    /// The terminal (leaf) PTE of the walk.
    pub fn leaf(&self) -> Pte {
        self.ptes[self.len as usize - 1]
    }

    /// Translated address for `va`: frame base plus in-page offset.
    pub fn translate(&self, va: u64) -> u64 {
        self.target_base + (va & self.size.offset_mask())
    }

    /// Copies the path into a heap-backed [`WalkPath`].
    pub fn to_walk_path(&self) -> WalkPath {
        WalkPath {
            pte_addrs: self.pte_addrs().to_vec(),
            ptes: self.ptes().to_vec(),
            target_base: self.target_base,
            size: self.size,
        }
    }
}

/// A synthetic radix page table (3-, 4-, or 5-level, optionally with a
/// widened root as in RISC-V's Sv39x4/Sv48x4 G-stage).
///
/// Nodes are allocated at 4 KB-aligned addresses supplied by the caller's
/// allocator closure, so the table can be *placed* inside guest-physical or
/// host-physical memory and its own node addresses can themselves be
/// translated (the essence of the nested walk).
///
/// # Examples
///
/// ```
/// use hypersio_mem::{Pte, RadixTable};
/// use hypersio_types::PageSize;
///
/// let mut next = 0x1000u64;
/// let mut table = RadixTable::new(4, &mut || {
///     let a = next;
///     next += 4096;
///     a
/// });
/// table.map(0xbbe0_0000, 0x4000_0000, PageSize::Size2M, &mut || {
///     let a = next;
///     next += 4096;
///     a
/// }).unwrap();
/// let path = table.walk(0xbbe0_1234).unwrap();
/// assert_eq!(path.translate(0xbbe0_1234), 0x4000_1234);
/// assert_eq!(path.ptes.len(), 3); // levels 4,3,2 for a 2MB page
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadixTable {
    levels: u8,
    /// Extra index bits in the root level (0 for x86; 2 for a RISC-V
    /// Sv39x4/Sv48x4 G-stage, whose root holds `512 << 2` entries).
    root_extra_bits: u8,
    root: u64,
    /// Base addresses of all allocated table nodes.
    nodes: HashSet<u64, FxBuildHasher>,
    /// Sparse PTE storage keyed by the PTE's own address in the owning
    /// space (`node_base + index * PTE_BYTES`). A walk step is a single
    /// cheap-hash probe of this map.
    entries: HashMap<u64, Pte, FxBuildHasher>,
}

impl RadixTable {
    /// Creates an empty table with `levels` levels (3, 4, or 5), allocating
    /// the root node from `alloc_node`.
    ///
    /// `alloc_node` must return distinct 4 KB-aligned addresses.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 3, 4, or 5.
    pub fn new(levels: u8, alloc_node: &mut dyn FnMut() -> u64) -> Self {
        Self::with_root_widening(levels, 0, alloc_node)
    }

    /// Creates an empty table whose root level has `root_extra_bits` extra
    /// index bits — the RISC-V `x4` G-stage shape: a 2-bit-widened root
    /// holds `512 << 2` entries in a 16 KB root node.
    ///
    /// The widened root spans `1 << root_extra_bits` consecutive 4 KB
    /// frames, all drawn from `alloc_node`.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 3, 4, or 5, if `root_extra_bits > 2`, or
    /// if `alloc_node` does not produce contiguous frames for the widened
    /// root (bump allocators, as used by [`crate::TenantSpaceBuilder`],
    /// always do).
    pub fn with_root_widening(
        levels: u8,
        root_extra_bits: u8,
        alloc_node: &mut dyn FnMut() -> u64,
    ) -> Self {
        assert!(
            (3..=5).contains(&levels),
            "only 3-, 4-, and 5-level tables are modelled"
        );
        assert!(root_extra_bits <= 2, "root widening is at most 2 bits");
        let root = alloc_node();
        let mut nodes = HashSet::default();
        nodes.insert(root);
        // Reserve the rest of the widened root's span so no later node can
        // land inside it (root PTE addresses extend past the first frame).
        for chunk in 1..(1u64 << root_extra_bits) {
            let frame = alloc_node();
            assert!(
                frame == root + chunk * 4096,
                "widened root needs contiguous frames from the allocator"
            );
            nodes.insert(frame);
        }
        RadixTable {
            levels,
            root_extra_bits,
            root,
            nodes,
            entries: HashMap::default(),
        }
    }

    /// Returns the number of levels.
    pub const fn levels(&self) -> u8 {
        self.levels
    }

    /// Returns the extra index bits of the root level (0 unless this is a
    /// widened G-stage table).
    pub const fn root_extra_bits(&self) -> u8 {
        self.root_extra_bits
    }

    /// Returns the root node's base address.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Returns the number of allocated table nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of populated PTEs (table pointers and leaves).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over the base addresses of all allocated table nodes.
    ///
    /// Used by [`crate::TenantSpaceBuilder`] to map the guest table's own
    /// nodes into the host table (guest PTE reads are guest-physical
    /// accesses that need nested translation).
    pub fn node_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes.iter().copied()
    }

    fn index(&self, va: u64, level: u8) -> usize {
        // Every level extracts 9 bits above the 12-bit page offset; the
        // root level of a widened (x4) table extracts 9 + root_extra_bits.
        let entries = if level == self.levels {
            RADIX << self.root_extra_bits
        } else {
            RADIX
        };
        ((va >> (12 + 9 * (level as u64 - 1))) & (entries as u64 - 1)) as usize
    }

    /// Maps the page containing `va` to the frame at `target`, creating
    /// intermediate nodes with `alloc_node` as needed.
    ///
    /// `va` and `target` are truncated to the page boundary of `size`.
    ///
    /// # Errors
    ///
    /// Returns [`PageTableError::AlreadyMapped`] if the leaf slot is taken,
    /// or [`PageTableError::LevelConflict`] if an existing huge-page leaf
    /// blocks the path.
    pub fn map(
        &mut self,
        va: u64,
        target: u64,
        size: PageSize,
        alloc_node: &mut dyn FnMut() -> u64,
    ) -> Result<(), PageTableError> {
        let leaf_level = size.level();
        let mut node = self.root;
        for level in (leaf_level + 1..=self.levels).rev() {
            debug_assert!(self.nodes.contains(&node), "interior node must exist");
            let addr = node + self.index(va, level) as u64 * PTE_BYTES;
            node = match self.entries.get(&addr).copied() {
                Some(Pte::Table { next }) => next,
                Some(Pte::Leaf { .. }) => {
                    return Err(PageTableError::LevelConflict { va, level });
                }
                None => {
                    let next = alloc_node();
                    self.nodes.insert(next);
                    self.entries.insert(addr, Pte::Table { next });
                    next
                }
            };
        }
        let addr = node + self.index(va, leaf_level) as u64 * PTE_BYTES;
        if self.entries.contains_key(&addr) {
            return Err(PageTableError::AlreadyMapped { va });
        }
        self.entries.insert(
            addr,
            Pte::Leaf {
                target: target & !size.offset_mask(),
                size,
            },
        );
        Ok(())
    }

    /// Walks the table for `va`, returning the ordered PTE reads.
    ///
    /// # Errors
    ///
    /// Returns [`PageTableError::NotMapped`] if the walk reaches a vacant
    /// entry.
    pub fn walk(&self, va: u64) -> Result<WalkPath, PageTableError> {
        self.walk_inline(va).map(|path| path.to_walk_path())
    }

    /// Walks the table for `va` without heap allocation, returning the
    /// ordered PTE reads in inline storage.
    ///
    /// Identical semantics to [`RadixTable::walk`]; this is the hot-path
    /// variant the two-dimensional walker uses.
    ///
    /// # Errors
    ///
    /// Returns [`PageTableError::NotMapped`] if the walk reaches a vacant
    /// entry.
    pub fn walk_inline(&self, va: u64) -> Result<InlineWalkPath, PageTableError> {
        let mut path = InlineWalkPath {
            len: 0,
            pte_addrs: [0; MAX_LEVELS],
            ptes: [Pte::Table { next: 0 }; MAX_LEVELS],
            target_base: 0,
            size: PageSize::Size4K,
        };
        let mut node = self.root;
        for level in (1..=self.levels).rev() {
            let pte_addr = node + self.index(va, level) as u64 * PTE_BYTES;
            let entry = self
                .entries
                .get(&pte_addr)
                .copied()
                .ok_or(PageTableError::NotMapped { va, level })?;
            let step = path.len as usize;
            path.pte_addrs[step] = pte_addr;
            path.ptes[step] = entry;
            path.len += 1;
            match entry {
                Pte::Leaf { target, size } => {
                    path.target_base = target;
                    path.size = size;
                    return Ok(path);
                }
                Pte::Table { next } => node = next,
            }
        }
        // A 4-level walk always terminates at level >= 1 with a leaf or a
        // NotMapped error; reaching here means a level-1 table pointer,
        // which `map` can never create.
        unreachable!("level-1 entries are always leaves")
    }

    /// Returns the translated address for `va`, if mapped.
    pub fn translate(&self, va: u64) -> Option<u64> {
        self.walk_inline(va).ok().map(|path| path.translate(va))
    }

    /// Returns a copy of this table with every *owning-space* address —
    /// node bases, `Table` pointers, and `Leaf` targets — shifted by
    /// `delta` (wrapping). The radix keys (the translated virtual
    /// addresses) are untouched.
    ///
    /// This is the cheap way to stamp out per-tenant tables whose layout
    /// is affine in the tenant ID: build the canonical table once, then
    /// rebase it into each tenant's slab instead of replaying every `map`.
    pub fn rebased(&self, delta: u64) -> RadixTable {
        // A PTE's address is `node_base + index * PTE_BYTES`; shifting the
        // node base by `delta` shifts the PTE address by exactly `delta`.
        let entries = self
            .entries
            .iter()
            .map(|(&addr, &pte)| {
                let pte = match pte {
                    Pte::Table { next } => Pte::Table {
                        next: next.wrapping_add(delta),
                    },
                    Pte::Leaf { target, size } => Pte::Leaf {
                        target: target.wrapping_add(delta),
                        size,
                    },
                };
                (addr.wrapping_add(delta), pte)
            })
            .collect();
        RadixTable {
            levels: self.levels,
            root_extra_bits: self.root_extra_bits,
            root: self.root.wrapping_add(delta),
            nodes: self.nodes.iter().map(|&b| b.wrapping_add(delta)).collect(),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(from: u64) -> impl FnMut() -> u64 {
        let mut next = from;
        move || {
            let a = next;
            next += 4096;
            a
        }
    }

    #[test]
    fn map_and_walk_4k() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0x3480_0000, 0x7000_0000, PageSize::Size4K, &mut alloc)
            .unwrap();
        let path = t.walk(0x3480_0abc).unwrap();
        assert_eq!(path.ptes.len(), 4);
        assert_eq!(path.pte_addrs.len(), 4);
        assert_eq!(path.translate(0x3480_0abc), 0x7000_0abc);
        assert_eq!(path.size, PageSize::Size4K);
    }

    #[test]
    fn map_and_walk_2m() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0xbbe0_0000, 0x4000_0000, PageSize::Size2M, &mut alloc)
            .unwrap();
        let path = t.walk(0xbbe1_2345).unwrap();
        assert_eq!(path.ptes.len(), 3);
        assert_eq!(path.translate(0xbbe1_2345), 0x4001_2345);
    }

    #[test]
    fn unmapped_reports_level() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0x3480_0000, 0x7000_0000, PageSize::Size4K, &mut alloc)
            .unwrap();
        // Same L4/L3/L2 subtree, different L1 slot.
        let err = t.walk(0x3480_1000).unwrap_err();
        assert_eq!(
            err,
            PageTableError::NotMapped {
                va: 0x3480_1000,
                level: 1
            }
        );
        // Totally different subtree: fails at the root level.
        let err = t.walk(0xffff_ffff_f000).unwrap_err();
        assert!(matches!(err, PageTableError::NotMapped { level: 4, .. }));
    }

    #[test]
    fn double_map_rejected() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0x1000, 0x2000, PageSize::Size4K, &mut alloc).unwrap();
        let err = t.map(0x1fff, 0x3000, PageSize::Size4K, &mut alloc);
        assert_eq!(err, Err(PageTableError::AlreadyMapped { va: 0x1fff }));
    }

    #[test]
    fn four_kb_under_huge_page_conflicts() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0x20_0000, 0x4000_0000, PageSize::Size2M, &mut alloc)
            .unwrap();
        let err = t.map(0x20_1000, 0x5000_0000, PageSize::Size4K, &mut alloc);
        assert_eq!(
            err,
            Err(PageTableError::LevelConflict {
                va: 0x20_1000,
                level: 2
            })
        );
    }

    #[test]
    fn shared_interior_nodes_are_reused() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        // Two 4K pages in the same 2M region share L4/L3/L2 nodes.
        t.map(0xf000_0000, 0x1000, PageSize::Size4K, &mut alloc)
            .unwrap();
        let before = t.node_count();
        t.map(0xf000_1000, 0x2000, PageSize::Size4K, &mut alloc)
            .unwrap();
        assert_eq!(t.node_count(), before);
    }

    #[test]
    fn five_level_walk_has_five_steps() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(5, &mut alloc);
        t.map(0x1234_5678_9000, 0x4000, PageSize::Size4K, &mut alloc)
            .unwrap();
        assert_eq!(t.walk(0x1234_5678_9fff).unwrap().ptes.len(), 5);
    }

    #[test]
    fn pte_addrs_fall_inside_their_nodes() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0xbbe0_0000, 0x0, PageSize::Size2M, &mut alloc)
            .unwrap();
        let path = t.walk(0xbbe0_0000).unwrap();
        for addr in &path.pte_addrs {
            // Every PTE address sits inside some allocated 4K node.
            let node = addr & !0xfff;
            assert!(t.node_addrs().any(|n| n == node), "stray PTE at {addr:#x}");
        }
    }

    #[test]
    fn translate_shorthand() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(4, &mut alloc);
        t.map(0x5000, 0x9000, PageSize::Size4K, &mut alloc).unwrap();
        assert_eq!(t.translate(0x5042), Some(0x9042));
        assert_eq!(t.translate(0x6000), None);
    }

    #[test]
    #[should_panic(expected = "3-, 4-, and 5-level")]
    fn rejects_weird_level_counts() {
        let mut alloc = bump(0);
        let _ = RadixTable::new(2, &mut alloc);
    }

    #[test]
    fn three_level_walk_has_three_steps() {
        // Sv39-shaped guest table: 3 levels, 9-bit indices.
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(3, &mut alloc);
        t.map(0x3480_0000, 0x7000_0000, PageSize::Size4K, &mut alloc)
            .unwrap();
        let path = t.walk(0x3480_0abc).unwrap();
        assert_eq!(path.ptes.len(), 3);
        assert_eq!(path.translate(0x3480_0abc), 0x7000_0abc);
    }

    #[test]
    fn widened_root_reserves_contiguous_frames() {
        let mut alloc = bump(0x10_0000);
        let t = RadixTable::with_root_widening(3, 2, &mut alloc);
        // The 16 KB root occupies four consecutive frames...
        assert_eq!(t.node_count(), 4);
        for chunk in 0..4u64 {
            assert!(t.node_addrs().any(|n| n == 0x10_0000 + chunk * 4096));
        }
        // ...and the next allocation starts past them.
        assert_eq!(alloc(), 0x10_4000);
        assert_eq!(t.root_extra_bits(), 2);
    }

    #[test]
    fn widened_root_indexes_past_nine_bits() {
        // An Sv39x4 G-stage: root index covers bits [30, 41) — 11 bits.
        // Two GPAs 512 GiB apart alias in a 9-bit root but not in the
        // widened one.
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::with_root_widening(3, 2, &mut alloc);
        let low = 0x4000_0000u64; // root index 1
        let high = low + (512u64 << 30); // root index 513: needs widening
        t.map(low, 0x1000, PageSize::Size4K, &mut alloc).unwrap();
        t.map(high, 0x2000, PageSize::Size4K, &mut alloc).unwrap();
        assert_eq!(t.translate(low), Some(0x1000));
        assert_eq!(t.translate(high), Some(0x2000));
        // The two root PTEs really are distinct slots.
        let a = t.walk(low).unwrap().pte_addrs[0];
        let b = t.walk(high).unwrap().pte_addrs[0];
        assert_eq!(b - a, 512 * PTE_BYTES);
    }

    #[test]
    fn widened_root_rebases_cleanly() {
        const DELTA: u64 = 0x100_0000;
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::with_root_widening(4, 2, &mut alloc);
        t.map(0xbbe0_0000, 0x4000_0000, PageSize::Size2M, &mut alloc)
            .unwrap();
        let shifted = t.rebased(DELTA);
        assert_eq!(shifted.root_extra_bits(), 2);
        assert_eq!(shifted.translate(0xbbe0_1234), Some(0x4000_1234 + DELTA));
        assert_eq!(shifted.node_count(), t.node_count());
    }

    #[test]
    fn one_gig_leaf_at_sv39_root() {
        // Sv39 supports a 1 GiB "gigapage" leaf in its root level: the
        // walk is a single step.
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(3, &mut alloc);
        t.map(0x8000_0000, 0x1_0000_0000, PageSize::Size1G, &mut alloc)
            .unwrap();
        let path = t.walk(0x8000_1234).unwrap();
        assert_eq!(path.ptes.len(), 1);
        assert_eq!(path.translate(0x8000_1234), 0x1_0000_1234);
        assert_eq!(path.size, PageSize::Size1G);
    }

    #[test]
    fn rebased_matches_rebuilt_table() {
        const DELTA: u64 = 0x100_0000;
        // Build the same mappings twice: once at base 0x10_0000, once at
        // base 0x10_0000 + DELTA with all targets shifted too.
        let mut a_alloc = bump(0x10_0000);
        let mut a = RadixTable::new(4, &mut a_alloc);
        a.map(0xbbe0_0000, 0x4000_0000, PageSize::Size2M, &mut a_alloc)
            .unwrap();
        a.map(0x3480_0000, 0x7000_0000, PageSize::Size4K, &mut a_alloc)
            .unwrap();

        let mut b_alloc = bump(0x10_0000 + DELTA);
        let mut b = RadixTable::new(4, &mut b_alloc);
        b.map(
            0xbbe0_0000,
            0x4000_0000 + DELTA,
            PageSize::Size2M,
            &mut b_alloc,
        )
        .unwrap();
        b.map(
            0x3480_0000,
            0x7000_0000 + DELTA,
            PageSize::Size4K,
            &mut b_alloc,
        )
        .unwrap();

        assert_eq!(a.rebased(DELTA), b);
        // Walk results shift accordingly; radix keys do not.
        let shifted = a.rebased(DELTA);
        assert_eq!(shifted.translate(0x3480_0042), Some(0x7000_0042 + DELTA));
        let pa: Vec<u64> = a.walk(0xbbe0_1234).unwrap().pte_addrs;
        let pb: Vec<u64> = shifted.walk(0xbbe0_1234).unwrap().pte_addrs;
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x + DELTA, *y);
        }
    }

    #[test]
    fn rebased_zero_is_identity() {
        let mut alloc = bump(0x10_0000);
        let mut t = RadixTable::new(5, &mut alloc);
        t.map(0x1234_5678_9000, 0x4000, PageSize::Size4K, &mut alloc)
            .unwrap();
        assert_eq!(t.rebased(0), t);
    }

    #[test]
    fn error_display() {
        let e = PageTableError::NotMapped { va: 0x10, level: 2 };
        assert!(format!("{e}").contains("not mapped"));
    }
}
