//! The two-dimensional (nested) page-table walker of the paper's Fig 2.
//!
//! Every step of the first-level (guest) walk reads a guest PTE that lives
//! at a guest-physical address, so each step costs a full second-level
//! (host) walk plus the guest PTE read itself. The cost is a *derived*
//! property of the active [`crate::WalkGeometry`]: `G × (H + 1) + H` reads
//! for a 4 KB mapping — 24 for x86 4-level tables (the number the paper
//! quotes from the Intel VT-d specification), 35 for x86 5-level, 15 for
//! RISC-V Sv39x4, 24 for Sv48x4 — and one `(H + 1)` term less per guest
//! level a superpage leaf skips (19 for an x86-4 2 MB mapping). Debug
//! builds assert the charged reads against the closed form on every walk.
//!
//! The walk caches ([`crate::WalkCaches`]) short-circuit the upper guest
//! levels: an L2 hit delivers the guest level-2 PTE directly (skipping
//! levels 4–3–2 and their nested walks), an L3 hit skips levels 4–3.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use hypersio_types::{Did, GIova, GPa, HPa, PageSize, Sid};

use crate::page_table::{InlineWalkPath, PageTableError, Pte};
use crate::space::TenantSpace;
use crate::walk_cache::WalkCaches;
use hypersio_types::fxhash::FxBuildHasher;

/// A failed translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslationFault {
    /// The gIOVA has no guest mapping.
    GuestNotMapped {
        /// The faulting address.
        iova: GIova,
    },
    /// A guest-physical address touched during the walk has no host mapping
    /// (a misconfigured tenant space).
    HostNotMapped {
        /// The faulting guest-physical address.
        gpa: GPa,
    },
}

impl fmt::Display for TranslationFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationFault::GuestNotMapped { iova } => {
                write!(f, "guest mapping missing for {iova}")
            }
            TranslationFault::HostNotMapped { gpa } => {
                write!(f, "host mapping missing for gPA {gpa}")
            }
        }
    }
}

impl Error for TranslationFault {}

/// The result of one two-dimensional walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Final host-physical address for the requested gIOVA.
    pub hpa: HPa,
    /// Page size of the guest leaf mapping.
    pub size: PageSize,
    /// Total DRAM reads performed (0 if satisfied purely from caches —
    /// impossible here since walk caches only cover upper levels).
    pub dram_accesses: u64,
    /// Guest level at which the walk started (root level = full walk,
    /// 2 = L2 hit, 0 = the leaf itself was cached).
    pub start_level: u8,
}

/// Stateless walker logic over a [`TenantSpace`] and shared [`WalkCaches`].
///
/// # Examples
///
/// ```
/// use hypersio_mem::{TenantSpace, TwoDimWalker, WalkCacheConfig, WalkCaches};
/// use hypersio_types::{Did, GIova, PageSize, Sid};
///
/// let mut b = TenantSpace::builder(Did::new(0));
/// b.map(GIova::new(0x3480_0000), PageSize::Size4K);
/// let space = b.build();
/// let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
///
/// let cold = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000),
///                               &mut caches, 0).unwrap();
/// assert_eq!(cold.dram_accesses, 24); // full 2-D walk, 4 KB page
/// let warm = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000),
///                               &mut caches, 1).unwrap();
/// assert_eq!(warm.dram_accesses, 9); // L2 hit: guest L1 (4+1) + final host walk (4)
/// ```
#[derive(Debug)]
pub struct TwoDimWalker;

/// DRAM reads for one nested (host) walk: one PTE read per host level.
fn host_walk_reads(space: &TenantSpace) -> u64 {
    space.host_table().levels() as u64
}

/// Memo coalescing the *functional* radix traversals of concurrent walks.
///
/// Walks to the same page — duplicate in-flight misses within a request
/// batch, or the repeated nested host walks a single guest walk issues for
/// PTEs sharing a host page — coalesce into one functional traversal whose
/// result (the guest PTE path, or the host page backing a gPA) is replayed
/// for every requester. Because the paper's out-of-order completion
/// semantics place no ordering constraint between concurrent walks, sharing
/// the functional outcome is legal; only the *charging* is per-request, and
/// that is untouched: every walk still performs its own walk-cache probes
/// and fills, nested-TLB accesses, and DRAM-read accounting, so simulated
/// state and statistics are bit-identical to uncoalesced walks.
///
/// Entries are keyed by [`TenantSpace::layout_id`] *and* the layout's
/// [`crate::WalkGeometry`] discriminant, and stored in *canonical*
/// coordinates: all tenants stamped from one
/// [`crate::TenantSpaceBuilder::build_many`] call share bit-identical guest
/// tables and affine host tables, so a single memo entry serves every
/// sibling (the caller's [`TenantSpace::host_delta`] is applied on the way
/// out). This keeps the memo a few thousand entries at any tenant count —
/// cache-resident — instead of growing per tenant. It also makes slab
/// migration free: a migrated tenant's delta changes, the canonical entry
/// stays valid, and no invalidation is needed.
///
/// Guest tables are immutable after [`TenantSpace`] construction, so guest
/// entries never go stale; faults are terminal per-requester and never
/// memoized.
#[derive(Debug, Default)]
pub struct WalkMemo {
    /// `(layout id, geometry id, iova page)` → full guest walk path
    /// (root … leaf PTE), identical across the layout's tenants. The
    /// geometry discriminant makes it impossible for a path memoized under
    /// one walk shape to serve a layout built in another, even if layout
    /// ids were ever recycled across geometries.
    guest: HashMap<(u64, u8, u64), InlineWalkPath, FxBuildHasher>,
    /// `(layout id, geometry id, gpa page)` → canonical host-physical 4 KB
    /// page base (the caller adds its own slab delta).
    host: HashMap<(u64, u8, u64), u64, FxBuildHasher>,
}

impl WalkMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        WalkMemo::default()
    }

    /// Drops every memoized result.
    pub fn clear(&mut self) {
        self.guest.clear();
        self.host.clear();
    }

    /// Returns the number of memoized guest paths and host pages.
    pub fn len(&self) -> (usize, usize) {
        (self.guest.len(), self.host.len())
    }

    /// Returns true if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.guest.is_empty() && self.host.is_empty()
    }

    /// The guest walk path for `iova`, shared across all walks touching its
    /// 4 KB-aligned page. Faults are not memoized (they are terminal for
    /// the requester and carry no reusable result).
    fn guest_path(
        &mut self,
        space: &TenantSpace,
        iova: GIova,
    ) -> Result<InlineWalkPath, PageTableError> {
        let key = (space.layout_id(), space.geometry().id(), iova.raw() >> 12);
        if let Some(path) = self.guest.get(&key) {
            return Ok(*path);
        }
        let path = space.guest_walk_inline(iova)?;
        self.guest.insert(key, path);
        Ok(path)
    }

    /// The host-physical 4 KB page backing `gpa`, shared across all nested
    /// walks touching its page.
    fn host_page(&mut self, space: &TenantSpace, gpa: GPa) -> Result<HPa, PageTableError> {
        let key = (space.layout_id(), space.geometry().id(), gpa.raw() >> 12);
        if let Some(&canonical) = self.host.get(&key) {
            return Ok(HPa::new(canonical.wrapping_add(space.host_delta())));
        }
        let path = space.host_walk_inline(gpa)?;
        let page = path.translate(gpa.raw()) & !0xfff;
        self.host.insert(key, page.wrapping_sub(space.host_delta()));
        Ok(HPa::new(page))
    }
}

/// Charges one second-level translation of `gpa`: free on a nested-TLB hit,
/// a full host walk (with a nested-TLB fill) otherwise.
///
/// Returns the DRAM reads charged and the host-physical 4 KB page backing
/// `gpa`, so the caller never repeats the functional host walk.
fn charge_host_walk(
    space: &TenantSpace,
    caches: &mut WalkCaches,
    sid: Sid,
    gpa: GPa,
    now: u64,
    memo: Option<&mut WalkMemo>,
) -> Result<(u64, HPa), TranslationFault> {
    let did = space.did();
    if let Some(page) = caches.lookup_nested(sid, did, gpa, now) {
        return Ok((0, page));
    }
    let page = match memo {
        Some(memo) => memo.host_page(space, gpa),
        None => space
            .host_walk_inline(gpa)
            .map(|path| HPa::new(path.translate(gpa.raw()) & !0xfff)),
    }
    .map_err(|_| TranslationFault::HostNotMapped { gpa })?;
    caches.fill_nested(sid, did, gpa, page, now);
    Ok((host_walk_reads(space), page))
}

impl TwoDimWalker {
    /// Performs the two-dimensional walk for (`sid`, `iova`) in `space`,
    /// consulting and filling `caches`.
    ///
    /// Returns the outcome including the exact DRAM read count; the caller
    /// converts reads into latency via its DRAM model.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslationFault`] if the gIOVA (or any nested gPA) is
    /// unmapped.
    pub fn walk(
        space: &TenantSpace,
        sid: Sid,
        iova: GIova,
        caches: &mut WalkCaches,
        now: u64,
    ) -> Result<WalkOutcome, TranslationFault> {
        Self::walk_memoized(space, sid, iova, caches, None, now)
    }

    /// [`Self::walk`] with an optional [`WalkMemo`] coalescing the
    /// functional traversals with other walks sharing the memo.
    ///
    /// Produces the same outcome, cache state, and statistics as
    /// [`Self::walk`] for any memo built against the same layouts (memo
    /// entries live in canonical coordinates, so they stay consistent even
    /// across slab migration — see [`WalkMemo`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TranslationFault`] if the gIOVA (or any nested gPA) is
    /// unmapped.
    pub fn walk_memoized(
        space: &TenantSpace,
        sid: Sid,
        iova: GIova,
        caches: &mut WalkCaches,
        mut memo: Option<&mut WalkMemo>,
        now: u64,
    ) -> Result<WalkOutcome, TranslationFault> {
        let did = space.did();
        let mut reads = 0u64;
        let table_levels = space.guest_table().levels();

        // The functional guest walk gives us the PTEs per level; the cache
        // state decides how many of those reads (and their nested host
        // walks) we must charge.
        let gpath = match memo.as_deref_mut() {
            Some(memo) => memo.guest_path(space, iova),
            None => space.guest_walk_inline(iova),
        }
        .map_err(|_| TranslationFault::GuestNotMapped { iova })?;
        let walk_steps = gpath.len() as u8; // table_levels for 4K leaf
        let leaf_level = table_levels - walk_steps + 1; // 1 for 4K, 2 for 2M

        // Walk-cache consultation: L2 first (closest to the leaf), then L3.
        // `start_level` is the first guest level whose PTE we must actually
        // read from memory.
        let (start_level, mut leaf_from_cache) =
            if let Some(pte) = caches.lookup_l2(sid, did, iova, now) {
                match pte {
                    Pte::Leaf { .. } => (0u8, Some(pte)), // 2 MB leaf cached: no guest reads
                    Pte::Table { .. } => (1, None),       // pointer to L1: read guest L1 only
                }
            } else if caches.lookup_l3(sid, did, iova, now).is_some() {
                (2, None) // read guest L2 (and L1 if 4K leaf)
            } else {
                (table_levels, None) // full first-level walk
            };

        // Nested-TLB hits observed while charging (debug accounting only):
        // each one makes a host walk free, subtracting exactly
        // `host_walk_reads` from the closed-form cold cost.
        #[cfg(debug_assertions)]
        let (mut dbg_guest_reads, mut dbg_cold_hosts, mut dbg_nested_hits) = (0u64, 0u64, 0u64);
        #[cfg(debug_assertions)]
        let mut dbg_count = |host_reads: u64, guest_read: bool| {
            dbg_guest_reads += guest_read as u64;
            if host_reads == 0 {
                dbg_nested_hits += 1;
            } else {
                dbg_cold_hosts += 1;
            }
        };

        // Charge guest PTE reads from `start_level` down to the leaf level,
        // each preceded by a nested host walk of the PTE's gPA.
        if start_level > 0 {
            for level in (leaf_level..=start_level.min(table_levels)).rev() {
                // Index into gpath: the root level is entry 0.
                let step = (table_levels - level) as usize;
                let pte = gpath.ptes()[step];
                let pte_gpa = gpath.pte_addrs()[step];
                // Nested host walk for the guest PTE's address (free on a
                // nested-TLB hit), plus the guest PTE read itself.
                let host_reads = charge_host_walk(
                    space,
                    caches,
                    sid,
                    GPa::new(pte_gpa),
                    now,
                    memo.as_deref_mut(),
                )?
                .0;
                reads += host_reads + 1;
                #[cfg(debug_assertions)]
                dbg_count(host_reads, true);

                // Fill walk caches with what we just read.
                match level {
                    3 => caches.fill_l3(sid, did, iova, pte, now),
                    2 => caches.fill_l2(sid, did, iova, pte, now),
                    _ => {}
                }
                if pte.is_leaf() {
                    leaf_from_cache = Some(pte);
                    break;
                }
            }
        }

        let leaf = leaf_from_cache.unwrap_or_else(|| gpath.leaf());
        let (target, size) = match leaf {
            Pte::Leaf { target, size } => (target, size),
            Pte::Table { .. } => unreachable!("guest walk terminates at a leaf"),
        };
        let final_gpa = GPa::new(target + (iova.raw() & size.offset_mask()));

        // Final nested walk: translate the data gPA itself (free on a
        // nested-TLB hit). The charged walk already yields the host page
        // backing `final_gpa`; host frames are at least 4 KB-aligned, so
        // page base + low-12 offset is exactly what a second functional
        // host walk would return.
        let (final_reads, host_page) = charge_host_walk(space, caches, sid, final_gpa, now, memo)?;
        reads += final_reads;
        #[cfg(debug_assertions)]
        dbg_count(final_reads, false);

        // The access count is a checked property of the geometry, not a
        // hard-wired constant: the paper's "24 or 35 accesses" and the
        // RISC-V equivalents all fall out of `S x (H + 1) + H`, with each
        // nested-TLB hit making one host walk (`H` reads) free.
        #[cfg(debug_assertions)]
        {
            let geometry = space.geometry();
            let h = host_walk_reads(space);
            debug_assert_eq!(table_levels, geometry.guest_levels());
            debug_assert_eq!(h, geometry.host_levels() as u64);
            debug_assert!(geometry.supports_leaf_level(leaf_level));
            // `start_level == 0`: the L2 walk cache served the leaf itself.
            // `leaf_level > start_level`: an upper-level superpage leaf sits
            // above the cache-skipped levels. Both leave only the final
            // host walk.
            let cold_form = if start_level == 0 || leaf_level > start_level {
                h
            } else {
                geometry.walk_reads_from(start_level.min(table_levels), leaf_level)
            };
            debug_assert_eq!(
                reads + dbg_nested_hits * h,
                cold_form,
                "charged accesses must match the closed form for {geometry}"
            );
            debug_assert_eq!(reads, dbg_guest_reads + dbg_cold_hosts * h);
        }

        Ok(WalkOutcome {
            hpa: HPa::new(host_page.raw() + (final_gpa.raw() & 0xfff)),
            size,
            dram_accesses: reads,
            start_level,
        })
    }

    /// Performs the walk for a known-`did` tenant out of a slice of spaces.
    ///
    /// Convenience for callers that index spaces by DID.
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range for `spaces`.
    pub fn walk_for(
        spaces: &[TenantSpace],
        sid: Sid,
        did: Did,
        iova: GIova,
        caches: &mut WalkCaches,
        now: u64,
    ) -> Result<WalkOutcome, TranslationFault> {
        Self::walk(&spaces[did.index()], sid, iova, caches, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk_cache::WalkCacheConfig;

    fn space_4k() -> TenantSpace {
        let mut b = TenantSpace::builder(Did::new(0));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        b.map(GIova::new(0x3480_1000), PageSize::Size4K);
        b.build()
    }

    fn space_2m() -> TenantSpace {
        let mut b = TenantSpace::builder(Did::new(0));
        for i in 0..4u64 {
            b.map(GIova::new(0xbbe0_0000 + i * 0x20_0000), PageSize::Size2M);
        }
        b.build()
    }

    fn caches() -> WalkCaches {
        WalkCaches::new(&WalkCacheConfig::paper_base())
    }

    #[test]
    fn cold_4k_walk_costs_24() {
        let space = space_4k();
        let mut c = caches();
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 0).unwrap();
        assert_eq!(out.dram_accesses, 24);
        assert_eq!(out.start_level, 4);
        assert_eq!(out.size, PageSize::Size4K);
    }

    #[test]
    fn cold_2m_walk_costs_19() {
        let space = space_2m();
        let mut c = caches();
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 0).unwrap();
        assert_eq!(out.dram_accesses, 19);
        assert_eq!(out.size, PageSize::Size2M);
    }

    #[test]
    fn warm_l2_hit_4k_costs_9() {
        let space = space_4k();
        let mut c = caches();
        TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 0).unwrap();
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 1).unwrap();
        // L2 cached the pointer to the L1 node: guest L1 read (4+1) + final 4.
        assert_eq!(out.dram_accesses, 9);
        assert_eq!(out.start_level, 1);
    }

    #[test]
    fn warm_l2_hit_2m_costs_4() {
        let space = space_2m();
        let mut c = caches();
        TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 0).unwrap();
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_1234), &mut c, 1).unwrap();
        // 2 MB leaf cached in L2: only the final host walk remains.
        assert_eq!(out.dram_accesses, 4);
        assert_eq!(out.start_level, 0);
    }

    #[test]
    fn l3_hit_skips_upper_levels() {
        let space = space_2m();
        let mut c = caches();
        // Warm with one 2 MB page, then walk a *different* 2 MB page in the
        // same 1 GB region: L2 misses (different tag) but L3 hits.
        TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 0).unwrap();
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbc00_0000), &mut c, 1).unwrap();
        // Guest L2 read (4+1) + final 4 = 9; levels 4-3 skipped.
        assert_eq!(out.start_level, 2);
        assert_eq!(out.dram_accesses, 9);
    }

    #[test]
    fn translation_is_functionally_correct() {
        let space = space_2m();
        let mut c = caches();
        let iova = GIova::new(0xbbe0_0000 + 0x1_2345);
        let out = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut c, 0).unwrap();
        let (expect, _) = space.lookup(iova).unwrap();
        assert_eq!(out.hpa, expect);
        // And cached walks agree with cold walks.
        let out2 = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut c, 1).unwrap();
        assert_eq!(out2.hpa, expect);
    }

    #[test]
    fn unmapped_iova_faults() {
        let space = space_4k();
        let mut c = caches();
        let err = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xdead_0000), &mut c, 0)
            .unwrap_err();
        assert!(matches!(err, TranslationFault::GuestNotMapped { .. }));
        assert!(format!("{err}").contains("guest mapping"));
    }

    #[test]
    fn adjacent_4k_pages_share_l2_entry() {
        let space = space_4k();
        let mut c = caches();
        TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 0).unwrap();
        // Second page is in the same 2 MB region: L2 pointer hit.
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_1000), &mut c, 1).unwrap();
        assert_eq!(out.start_level, 1);
        assert_eq!(out.dram_accesses, 9);
    }

    #[test]
    fn nested_tlb_shortens_repeat_host_walks() {
        use crate::walk_cache::WalkCacheConfig;
        use hypersio_cache::CacheGeometry;
        let space = space_2m();
        let cfg = WalkCacheConfig::paper_base().with_nested_tlb(CacheGeometry::new(256, 8));
        let mut c = WalkCaches::new(&cfg);
        let cold =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 0).unwrap();
        assert_eq!(cold.dram_accesses, 19); // cold: nested TLB empty
                                            // Invalidate the L2 leaf so the guest walk repeats, but every
                                            // host translation now hits the nested TLB: guest PTE reads only.
        c.clear_guest_only_for_test();
        let warm =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 1).unwrap();
        // Full guest walk (3 PTE reads) with free host walks + free final.
        assert_eq!(warm.dram_accesses, 3);
        assert_eq!(warm.hpa, cold.hpa);
    }

    #[test]
    fn five_level_cold_walk_costs_35() {
        // Paper §II: "24 or 35 memory accesses for 4-level or 5-level page
        // tables". 5 guest levels x (5 host reads + 1) + 5 final = 35.
        let mut b = TenantSpace::builder(Did::new(0));
        b.levels(5).map(GIova::new(0x3480_0000), PageSize::Size4K);
        let space = b.build();
        let mut c = caches();
        let out =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 0).unwrap();
        assert_eq!(out.dram_accesses, 35);
        assert_eq!(out.start_level, 5);
        // A warm L2 hit still shortcuts to guest L1 + final host walk.
        let warm =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 1).unwrap();
        assert_eq!(warm.dram_accesses, 5 + 1 + 5);
    }

    #[test]
    fn memoized_walks_match_unmemoized_bit_for_bit() {
        // Same iova stream through a memoized and an unmemoized walker:
        // outcomes, walk-cache stats, and DRAM charges must be identical —
        // the memo coalesces only the functional traversal.
        let space = space_2m();
        let iovas = [
            0xbbe0_0000u64,
            0xbbe0_1234,
            0xbc00_0000,
            0xbbe0_0000,
            0xbc20_4000,
            0xbbe0_1234,
        ];
        let cfg = WalkCacheConfig::paper_base()
            .with_nested_tlb(hypersio_cache::CacheGeometry::new(256, 8));
        let mut plain = WalkCaches::new(&cfg);
        let mut coalesced = WalkCaches::new(&cfg);
        let mut memo = WalkMemo::new();
        for (now, &iova) in iovas.iter().enumerate() {
            let a = TwoDimWalker::walk(
                &space,
                Sid::new(0),
                GIova::new(iova),
                &mut plain,
                now as u64,
            )
            .unwrap();
            let b = TwoDimWalker::walk_memoized(
                &space,
                Sid::new(0),
                GIova::new(iova),
                &mut coalesced,
                Some(&mut memo),
                now as u64,
            )
            .unwrap();
            assert_eq!(a, b, "outcome diverged at step {now}");
        }
        assert_eq!(plain.stats(), coalesced.stats());
        assert_eq!(plain.nested_stats(), coalesced.nested_stats());
        assert!(!memo.is_empty());
    }

    #[test]
    fn memo_entries_survive_migration_and_stay_correct() {
        // Canonical-coordinate entries need no invalidation on slab
        // migration: the same memo must produce the *new* hPA afterwards.
        let mut space = space_4k();
        let mut c = caches();
        let mut memo = WalkMemo::new();
        let iova = GIova::new(0x3480_0000);
        let before =
            TwoDimWalker::walk_memoized(&space, Sid::new(0), iova, &mut c, Some(&mut memo), 0)
                .unwrap();
        assert!(!memo.is_empty());
        let entries = memo.len();
        space.migrate_to_slab(7);
        c.clear(); // cached translations of the old slab are shot down
        let after =
            TwoDimWalker::walk_memoized(&space, Sid::new(0), iova, &mut c, Some(&mut memo), 1)
                .unwrap();
        // The memo was reused (no new entries), yet the result tracks the
        // migrated table exactly as an unmemoized walk would.
        assert_eq!(memo.len(), entries);
        let mut fresh = caches();
        let plain = TwoDimWalker::walk(&space, Sid::new(0), iova, &mut fresh, 1).unwrap();
        assert_eq!(after.hpa, plain.hpa);
        assert_ne!(after.hpa, before.hpa);
    }

    #[test]
    fn memo_is_shared_across_build_many_siblings() {
        // Two tenants stamped from one build_many call share layout
        // entries: walking the same iova in tenant 1 after tenant 0 adds
        // nothing to the memo, and each tenant still gets its own hPA.
        let mut b = TenantSpace::builder(Did::new(0));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        let spaces = b.build_many(&[Did::new(0), Did::new(1)]);
        let mut c = caches();
        let mut memo = WalkMemo::new();
        let iova = GIova::new(0x3480_0000);
        let a =
            TwoDimWalker::walk_memoized(&spaces[0], Sid::new(0), iova, &mut c, Some(&mut memo), 0)
                .unwrap();
        let entries = memo.len();
        let b =
            TwoDimWalker::walk_memoized(&spaces[1], Sid::new(1), iova, &mut c, Some(&mut memo), 1)
                .unwrap();
        assert_eq!(memo.len(), entries, "sibling walk must reuse the memo");
        assert_ne!(a.hpa, b.hpa, "tenants live in different slabs");
        assert_eq!(b.hpa, spaces[1].lookup(iova).unwrap().0);
    }

    #[test]
    fn memoized_faults_are_not_cached() {
        let space = space_4k();
        let mut c = caches();
        let mut memo = WalkMemo::new();
        for now in 0..2 {
            let err = TwoDimWalker::walk_memoized(
                &space,
                Sid::new(0),
                GIova::new(0xdead_0000),
                &mut c,
                Some(&mut memo),
                now,
            )
            .unwrap_err();
            assert!(matches!(err, TranslationFault::GuestNotMapped { .. }));
        }
        assert!(memo.is_empty());
    }

    #[test]
    fn riscv_cold_walk_costs_match_closed_form() {
        use crate::WalkGeometry;
        // Sv39x4: 3 x (3 + 1) + 3 = 15 for 4 KB, 2 x 4 + 3 = 11 for 2 MB.
        // Sv48x4: 4 x (4 + 1) + 4 = 24 for 4 KB, 3 x 5 + 4 = 19 for 2 MB.
        for (geom, cost_4k, cost_2m) in [
            (WalkGeometry::RiscvSv39x4, 15u64, 11u64),
            (WalkGeometry::RiscvSv48x4, 24, 19),
        ] {
            let mut b = TenantSpace::builder(Did::new(0));
            b.geometry(geom)
                .map(GIova::new(0x3480_0000), PageSize::Size4K)
                .map(GIova::new(0xbbe0_0000), PageSize::Size2M);
            let space = b.build();
            let mut c = caches();
            let out = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 0)
                .unwrap();
            assert_eq!(out.dram_accesses, cost_4k, "{geom} 4K");
            assert_eq!(out.start_level, geom.guest_levels());
            assert_eq!(out.dram_accesses, geom.full_walk_reads());
            let mut c = caches();
            let out = TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 0)
                .unwrap();
            assert_eq!(out.dram_accesses, cost_2m, "{geom} 2M");
        }
    }

    #[test]
    fn riscv_walk_cache_skips_match_closed_form() {
        use crate::WalkGeometry;
        let mut b = TenantSpace::builder(Did::new(0));
        b.geometry(WalkGeometry::RiscvSv39x4)
            .map(GIova::new(0x3480_0000), PageSize::Size4K)
            .map(GIova::new(0xbbe0_0000), PageSize::Size2M)
            .map(GIova::new(0xbc00_0000), PageSize::Size2M);
        let space = b.build();
        let mut c = caches();
        TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 0).unwrap();
        // L2 pointer hit: one guest step remains, 1 x (3 + 1) + 3 = 7.
        let warm =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0x3480_0000), &mut c, 1).unwrap();
        assert_eq!(warm.start_level, 1);
        assert_eq!(warm.dram_accesses, 7);
        // L3 hit on a sibling 2 MB page in the same 1 GiB region: for Sv39
        // the root PTE is the level-3 entry, so the skip leaves one guest
        // step, 1 x 4 + 3 = 7.
        TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbbe0_0000), &mut c, 2).unwrap();
        let l3 =
            TwoDimWalker::walk(&space, Sid::new(0), GIova::new(0xbc00_0000), &mut c, 3).unwrap();
        assert_eq!(l3.start_level, 2);
        assert_eq!(l3.dram_accesses, 7);
    }

    #[test]
    fn memo_never_crosses_geometries() {
        use crate::WalkGeometry;
        // Two layouts mapping the same iova in different geometries share
        // one memo; each still gets its own (correct) functional result.
        let iova = GIova::new(0x3480_0000);
        let mut memo = WalkMemo::new();
        for geom in [WalkGeometry::X86Nested4, WalkGeometry::RiscvSv39x4] {
            let mut b = TenantSpace::builder(Did::new(0));
            b.geometry(geom).map(iova, PageSize::Size4K);
            let space = b.build();
            let mut c = caches();
            let out =
                TwoDimWalker::walk_memoized(&space, Sid::new(0), iova, &mut c, Some(&mut memo), 0)
                    .unwrap();
            assert_eq!(out.dram_accesses, geom.full_walk_reads());
            assert_eq!(out.hpa, space.lookup(iova).unwrap().0);
        }
        // One guest path and at least one host page per geometry.
        assert_eq!(memo.len().0, 2);
    }

    #[test]
    fn walk_for_indexes_by_did() {
        let spaces = vec![space_4k()];
        let mut c = caches();
        let out = TwoDimWalker::walk_for(
            &spaces,
            Sid::new(0),
            Did::new(0),
            GIova::new(0x3480_0000),
            &mut c,
            0,
        )
        .unwrap();
        assert_eq!(out.dram_accesses, 24);
    }
}
