//! Fixed-latency DRAM model with access accounting.

use std::fmt;

use hypersio_types::SimDuration;

/// Main-memory model: every access costs a fixed latency (50 ns in the
/// paper's Table II) and is counted for reporting.
///
/// The model intentionally omits bank conflicts and queueing — the paper's
/// performance model charges a flat DRAM latency per page-table-entry read,
/// and the translation path is latency-bound, not DRAM-bandwidth-bound.
///
/// # Examples
///
/// ```
/// use hypersio_mem::Dram;
/// use hypersio_types::SimDuration;
///
/// let mut dram = Dram::new(SimDuration::from_ns(50));
/// let t = dram.read_many(24); // a full two-dimensional walk
/// assert_eq!(t.as_ns(), 1200);
/// assert_eq!(dram.accesses(), 24);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Dram {
    latency: SimDuration,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM model with the given per-access latency.
    pub fn new(latency: SimDuration) -> Self {
        Dram {
            latency,
            accesses: 0,
        }
    }

    /// Returns the per-access latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Performs one read, returning its latency.
    pub fn read(&mut self) -> SimDuration {
        self.accesses += 1;
        self.latency
    }

    /// Performs `n` dependent reads, returning their summed latency.
    ///
    /// Page-table walks are pointer chases: each read depends on the
    /// previous one, so latencies add rather than overlap.
    pub fn read_many(&mut self, n: u64) -> SimDuration {
        self.accesses += n;
        self.latency * n
    }

    /// Returns the total number of accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Resets the access counter.
    pub fn reset_accesses(&mut self) {
        self.accesses = 0;
    }

    /// Overwrites the access counter (checkpoint restore).
    pub(crate) fn set_accesses(&mut self, accesses: u64) {
        self.accesses = accesses;
    }
}

impl fmt::Debug for Dram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dram")
            .field("latency", &self.latency)
            .field("accesses", &self.accesses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_counts_and_charges() {
        let mut dram = Dram::new(SimDuration::from_ns(50));
        assert_eq!(dram.read().as_ns(), 50);
        assert_eq!(dram.read_many(3).as_ns(), 150);
        assert_eq!(dram.accesses(), 4);
    }

    #[test]
    fn read_many_zero_is_free() {
        let mut dram = Dram::new(SimDuration::from_ns(50));
        assert_eq!(dram.read_many(0), SimDuration::ZERO);
        assert_eq!(dram.accesses(), 0);
    }

    #[test]
    fn reset_accesses_keeps_latency() {
        let mut dram = Dram::new(SimDuration::from_ns(50));
        dram.read();
        dram.reset_accesses();
        assert_eq!(dram.accesses(), 0);
        assert_eq!(dram.latency().as_ns(), 50);
    }
}
