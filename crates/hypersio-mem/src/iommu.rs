//! The assembled IOMMU translation pipeline.

use std::fmt;

use hypersio_types::{Bdf, Did, GIova, HPa, PageSize, Sid, SimDuration};

use crate::context::{ContextCache, ContextEntry};
use crate::dram::Dram;
use crate::space::TenantSpace;
use crate::space_pool::{PoolStats, SpacePool};
use crate::walk_cache::{WalkCacheConfig, WalkCaches};
use crate::walker::{TranslationFault, TwoDimWalker, WalkMemo};

/// How the IOMMU resolves a gIOVA (the paper's design vs the related-work
/// alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranslationScheme {
    /// The two-dimensional nested page-table walk of §II (the paper's
    /// setting and the default).
    #[default]
    TwoDimensional,
    /// An rIOMMU-style flat per-ring translation table (Malka et al.,
    /// cited as \[28\]): one memory read resolves a device-visible page.
    /// The paper dismisses this for hyper-tenant setups because it needs
    /// modified guest drivers/OSes; the `abl_flat_table` ablation
    /// quantifies what that software change would buy.
    FlatTable,
}

/// Configuration of the chipset-side translation machinery.
///
/// # Examples
///
/// ```
/// use hypersio_mem::{IommuParams, TranslationScheme};
///
/// let params = IommuParams::paper();
/// assert_eq!(params.dram_latency.as_ns(), 50);
/// assert_eq!(params.scheme, TranslationScheme::TwoDimensional);
/// ```
#[derive(Debug, Clone)]
pub struct IommuParams {
    /// Per-access DRAM latency (Table II: 50 ns).
    pub dram_latency: SimDuration,
    /// Walk-cache configuration (Table II geometries; Table IV partitions).
    pub walk_caches: WalkCacheConfig,
    /// Context-cache entries.
    pub context_entries: usize,
    /// How gIOVAs are resolved.
    pub scheme: TranslationScheme,
}

impl IommuParams {
    /// The paper's Table II parameters with Base (unpartitioned) caches.
    pub fn paper() -> Self {
        IommuParams {
            dram_latency: SimDuration::from_ns(50),
            walk_caches: WalkCacheConfig::paper_base(),
            context_entries: 64,
            scheme: TranslationScheme::default(),
        }
    }

    /// Switches to the rIOMMU-style flat-table scheme.
    pub fn with_flat_tables(mut self) -> Self {
        self.scheme = TranslationScheme::FlatTable;
        self
    }

    /// Table II parameters with HyperTRIO's partitioned walk caches.
    pub fn paper_hypertrio() -> Self {
        IommuParams {
            walk_caches: WalkCacheConfig::paper_hypertrio(),
            ..IommuParams::paper()
        }
    }
}

impl Default for IommuParams {
    fn default() -> Self {
        IommuParams::paper()
    }
}

/// A completed IOMMU translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IommuResponse {
    /// The translated host-physical address.
    pub hpa: HPa,
    /// Page size of the mapping (cacheable granule for the DevTLB).
    pub size: PageSize,
    /// DRAM reads this translation performed.
    pub dram_accesses: u64,
    /// Chipset-side latency: context fetch + walk, excluding PCIe.
    pub latency: SimDuration,
}

/// Aggregate IOMMU statistics for reports (Fig 4's miss-rate/page-read
/// curves are derived from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IommuStats {
    /// Total translation requests received.
    pub requests: u64,
    /// Total DRAM reads performed (nested page reads included).
    pub dram_accesses: u64,
    /// Requests that performed a full first-level walk (starting at the
    /// geometry's guest root level, with no walk-cache skip).
    pub full_walks: u64,
    /// Translation faults returned.
    pub faults: u64,
}

/// The chipset IOMMU: context cache + walk caches + two-dimensional walker
/// over per-tenant synthetic page tables.
///
/// Latency model: every DRAM read costs `dram_latency` and reads are
/// dependent (pointer chase). Walk-cache and context-cache hit latencies
/// are folded into the device/IOMMU fixed costs by the simulator (Table II
/// charges an explicit hit latency only for the IOTLB/DevTLB).
pub struct Iommu {
    params: IommuParams,
    pool: SpacePool,
    caches: WalkCaches,
    context: ContextCache,
    dram: Dram,
    stats: IommuStats,
    /// Coalesces the functional radix traversals of walks to the same
    /// `(DID, page)` — see [`WalkMemo`]. Invalidated per DID on migration;
    /// guest entries are valid for the lifetime of the tenant spaces.
    memo: WalkMemo,
}

impl Iommu {
    /// Creates an IOMMU over the given eagerly built tenant spaces.
    ///
    /// Spaces must be indexed by DID: `spaces[i].did() == Did::new(i)`.
    /// A context entry is installed for every tenant with `Bdf = did`
    /// (the 1 VF : 1 tenant model of the paper's emulated system).
    ///
    /// # Panics
    ///
    /// Panics if the spaces are not DID-indexed.
    pub fn new(params: IommuParams, spaces: Vec<TenantSpace>) -> Self {
        Iommu::with_pool(params, SpacePool::dense(spaces))
    }

    /// Creates an IOMMU over a [`SpacePool`] — the scale-out entry point.
    ///
    /// For a dense pool this is exactly [`Iommu::new`]: every context
    /// entry is installed up front. For a lazy pool, context entries are
    /// installed when a tenant's space is first materialised (the
    /// hypervisor-configures-on-first-use view of a million-tenant host);
    /// translation behaviour is otherwise identical, since the context
    /// *cache* starts cold either way.
    pub fn with_pool(params: IommuParams, pool: SpacePool) -> Self {
        let mut context = ContextCache::new(params.context_entries);
        if !pool.is_lazy() {
            for did in 0..pool.tenants() {
                let did = Did::new(did);
                context.install(Bdf::from_routing_id(did.raw()), ContextEntry::new(did));
            }
        }
        let caches = WalkCaches::new(&params.walk_caches);
        let dram = Dram::new(params.dram_latency);
        Iommu {
            params,
            pool,
            caches,
            context,
            dram,
            stats: IommuStats::default(),
            memo: WalkMemo::new(),
        }
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &IommuParams {
        &self.params
    }

    /// Returns the tenant spaces of an eagerly built (dense) IOMMU.
    ///
    /// # Panics
    ///
    /// Panics for a lazily pooled IOMMU, whose resident set is not dense.
    pub fn spaces(&self) -> &[TenantSpace] {
        self.pool.dense_spaces()
    }

    /// Returns the space pool's build/eviction counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> IommuStats {
        self.stats
    }

    /// Returns (L2 walk-cache stats, L3 walk-cache stats).
    pub fn walk_cache_stats(&self) -> (hypersio_cache::CacheStats, hypersio_cache::CacheStats) {
        self.caches.stats()
    }

    /// Returns total DRAM accesses performed.
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses()
    }

    /// Translates (`sid`, `did`, `iova`) at trace position `now`.
    ///
    /// `did` selects the tenant space (the paper's 1:1 VF model also makes
    /// it the BDF for the context lookup).
    ///
    /// # Errors
    ///
    /// Returns a [`TranslationFault`] for unmapped addresses or an
    /// unconfigured device.
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range for the configured tenant spaces.
    pub fn translate(
        &mut self,
        sid: Sid,
        did: Did,
        iova: GIova,
        now: u64,
    ) -> Result<IommuResponse, TranslationFault> {
        assert!(
            did.index() < self.pool.tenants() as usize,
            "unknown tenant {did}; only {} spaces configured",
            self.pool.tenants()
        );
        self.stats.requests += 1;

        // Materialise the tenant's tables (no-op for a dense pool); a
        // first touch also installs the context entry on demand.
        let bdf = Bdf::from_routing_id(did.raw());
        if self.pool.ensure(did) {
            self.context.install(bdf, ContextEntry::new(did));
        }

        // 1. Context lookup: find the DID/table roots for the requester.
        let (entry, context_reads) = self
            .context
            .lookup_or_fetch(bdf, now)
            .expect("context entries installed at construction or first touch");
        debug_assert_eq!(entry.did(), did);
        let mut latency = self.dram.read_many(context_reads);

        let space = self.pool.get(did);

        // rIOMMU-style flat table: one memory read resolves the mapping
        // (the guest driver registered it directly, no nested walk).
        if self.params.scheme == TranslationScheme::FlatTable {
            return match space.lookup(iova) {
                Some((hpa, size)) => {
                    latency += self.dram.read();
                    self.stats.dram_accesses += context_reads + 1;
                    Ok(IommuResponse {
                        hpa,
                        size,
                        dram_accesses: context_reads + 1,
                        latency,
                    })
                }
                None => {
                    self.stats.faults += 1;
                    self.stats.dram_accesses += context_reads;
                    Err(TranslationFault::GuestNotMapped { iova })
                }
            };
        }

        // 2. Two-dimensional walk through the tenant's tables. Walks to
        // the same (DID, page) coalesce their functional traversals in the
        // memo; charging stays per-request (see `WalkMemo`).
        match TwoDimWalker::walk_memoized(
            space,
            sid,
            iova,
            &mut self.caches,
            Some(&mut self.memo),
            now,
        ) {
            Ok(outcome) => {
                latency += self.dram.read_many(outcome.dram_accesses);
                if outcome.start_level == space.geometry().guest_levels() {
                    self.stats.full_walks += 1;
                }
                self.stats.dram_accesses += context_reads + outcome.dram_accesses;
                Ok(IommuResponse {
                    hpa: outcome.hpa,
                    size: outcome.size,
                    dram_accesses: context_reads + outcome.dram_accesses,
                    latency,
                })
            }
            Err(fault) => {
                self.stats.faults += 1;
                self.stats.dram_accesses += context_reads;
                Err(fault)
            }
        }
    }

    /// Translates a batch of gIOVAs for one requester, exactly as
    /// sequential [`Self::translate`] calls at `now`, `now + 1`, … would:
    /// results land in `out` (cleared first) in request order, and all
    /// cache state, statistics, and latencies are bit-identical to the
    /// scalar sequence. Batching pays off inside the walker: the nested
    /// walk-cache probes of the batch's outstanding walks run back-to-back
    /// over warm cache state, and duplicate functional traversals coalesce
    /// in the walk memo.
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range for the configured tenant spaces.
    pub fn translate_batch(
        &mut self,
        sid: Sid,
        did: Did,
        iovas: &[GIova],
        now: u64,
        out: &mut Vec<Result<IommuResponse, TranslationFault>>,
    ) {
        out.clear();
        out.reserve(iovas.len());
        for (i, &iova) in iovas.iter().enumerate() {
            out.push(self.translate(sid, did, iova, now + i as u64));
        }
    }

    /// Clears all caching state (walk caches and context cache contents),
    /// as after a global invalidation. Statistics are kept.
    pub fn flush(&mut self) {
        self.caches.clear();
    }

    /// Shoots down every walk-cache entry (L2, L3, and nested TLB)
    /// belonging to `did`, as a DID-addressed IOTLB invalidation command
    /// does. Returns the number of entries removed.
    pub fn invalidate_did(&mut self, did: Did) -> usize {
        self.caches.invalidate_did(did)
    }

    /// Sheds reclaimable memory under host pressure: the walk memo is
    /// dropped (its entries are pure-function results, rebuilt on demand)
    /// and a lazy space pool's residency cap is halved with LRU eviction
    /// ([`SpacePool::shrink_residency`]). Both actions are transparent to
    /// the model — a degraded run produces bit-identical translations.
    /// Returns `(spaces evicted, memo entries dropped)`.
    pub fn relieve_memory_pressure(&mut self) -> (u64, u64) {
        let (guest, nested) = self.memo.len();
        self.memo.clear();
        let evicted = self.pool.shrink_residency();
        (evicted, (guest + nested) as u64)
    }

    /// Appends every piece of mutable IOMMU state a resumed run needs to a
    /// checkpoint stream: statistics, the DRAM access counter, context
    /// cache, walk caches, and pool residency metadata. The walk memo is
    /// deliberately excluded — it is a pure coalescing cache, re-derived
    /// on demand with no effect on results or charging.
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.push(self.stats.requests);
        out.push(self.stats.dram_accesses);
        out.push(self.stats.full_walks);
        out.push(self.stats.faults);
        out.push(self.dram.accesses());
        self.context.snapshot_words(out);
        self.caches.snapshot_words(out);
        self.pool.snapshot_words(out);
    }

    /// Restores state captured by [`Self::snapshot_words`] into a freshly
    /// constructed IOMMU of the same configuration. Lazy tenants resident
    /// at the checkpoint get their spaces re-stamped and their context
    /// entries re-installed; the walk memo starts empty. Returns `None`
    /// on a corrupt stream or a configuration mismatch.
    pub fn restore_words(&mut self, r: &mut hypersio_cache::WordReader<'_>) -> Option<()> {
        self.stats.requests = r.next()?;
        self.stats.dram_accesses = r.next()?;
        self.stats.full_walks = r.next()?;
        self.stats.faults = r.next()?;
        let dram_accesses = r.next()?;
        self.dram.set_accesses(dram_accesses);
        self.context.restore_words(r)?;
        self.caches.restore_words(r)?;
        self.pool.restore_words(r)?;
        self.memo.clear();
        if self.pool.is_lazy() {
            // The architected context table holds an entry per ever-touched
            // tenant; rebuilding it for the *resident* set is sufficient,
            // because a non-resident tenant's next touch re-installs its
            // entry on the ensure() path exactly as the first touch did.
            for did in self.pool.resident_dids() {
                self.context
                    .install(Bdf::from_routing_id(did.raw()), ContextEntry::new(did));
            }
        }
        Some(())
    }

    /// Migrates tenant `did` to host slab `slab`: the host table is
    /// re-stamped at the new location ([`TenantSpace::migrate_to_slab`]),
    /// the cached context entry is invalidated (the hypervisor rewrites it
    /// during the hand-over), and every walk-cache entry of the DID is shot
    /// down — the cached nested translations point into the old slab.
    ///
    /// The caller must also shoot down device-side state (DevTLB, Prefetch
    /// Buffer) for the DID; those caches live outside the IOMMU.
    ///
    /// # Panics
    ///
    /// Panics if `did` is out of range for the configured tenant spaces.
    pub fn migrate_tenant(&mut self, did: Did, slab: u64) -> usize {
        assert!(
            did.index() < self.pool.tenants() as usize,
            "unknown tenant {did}; only {} spaces configured",
            self.pool.tenants()
        );
        self.pool.migrate(did, slab);
        self.context.invalidate(Bdf::from_routing_id(did.raw()));
        // The walk memo needs no shootdown: its entries live in canonical
        // layout coordinates and the migrated tenant's slab delta is
        // applied per walk (see `WalkMemo`).
        self.caches.invalidate_did(did)
    }
}

impl fmt::Debug for Iommu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Iommu")
            .field("tenants", &self.pool.tenants())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersio_types::PageSize;

    fn tenant(did: u32) -> TenantSpace {
        let mut b = TenantSpace::builder(Did::new(did));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        b.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        b.build()
    }

    fn iommu(tenants: u32) -> Iommu {
        Iommu::new(IommuParams::paper(), (0..tenants).map(tenant).collect())
    }

    #[test]
    fn cold_translation_charges_context_plus_walk() {
        let mut m = iommu(1);
        let r = m
            .translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 0)
            .unwrap();
        // 2 context reads + 19-access 2 MB walk.
        assert_eq!(r.dram_accesses, 21);
        assert_eq!(r.latency.as_ns(), 21 * 50);
        assert_eq!(m.stats().full_walks, 1);
    }

    #[test]
    fn warm_translation_is_cheap() {
        let mut m = iommu(1);
        m.translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 0)
            .unwrap();
        let r = m
            .translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 1)
            .unwrap();
        // Context hit (0) + L2 leaf hit (final host walk only: 4 reads).
        assert_eq!(r.dram_accesses, 4);
        assert_eq!(m.stats().full_walks, 1);
    }

    #[test]
    fn translation_matches_functional_lookup() {
        let mut m = iommu(2);
        let iova = GIova::new(0xbbe0_0000 + 0x555);
        let want = m.spaces()[1].lookup(iova).unwrap().0;
        let got = m.translate(Sid::new(1), Did::new(1), iova, 0).unwrap().hpa;
        assert_eq!(got, want);
    }

    #[test]
    fn faults_are_counted() {
        let mut m = iommu(1);
        let err = m.translate(Sid::new(0), Did::new(0), GIova::new(0x1), 0);
        assert!(err.is_err());
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn out_of_range_did_panics() {
        let mut m = iommu(1);
        let _ = m.translate(Sid::new(9), Did::new(9), GIova::new(0x3480_0000), 0);
    }

    #[test]
    fn flush_forces_full_walks_again() {
        let mut m = iommu(1);
        m.translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 0)
            .unwrap();
        m.flush();
        let r = m
            .translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 1)
            .unwrap();
        assert_eq!(r.dram_accesses, 19); // context still cached, walk cold
        assert_eq!(m.stats().full_walks, 2);
    }

    #[test]
    fn invalidate_did_isolates_other_tenants() {
        let mut m = iommu(2);
        let iova = GIova::new(0xbbe0_0000);
        m.translate(Sid::new(0), Did::new(0), iova, 0).unwrap();
        m.translate(Sid::new(1), Did::new(1), iova, 1).unwrap();
        assert!(m.invalidate_did(Did::new(0)) > 0);
        // DID 0 must re-walk in full; DID 1's caches survive.
        let r0 = m.translate(Sid::new(0), Did::new(0), iova, 2).unwrap();
        assert_eq!(r0.dram_accesses, 19); // context warm, walk cold
        let r1 = m.translate(Sid::new(1), Did::new(1), iova, 3).unwrap();
        assert_eq!(r1.dram_accesses, 4); // L2 leaf still cached
    }

    #[test]
    fn migration_remaps_and_invalidates() {
        let mut m = iommu(2);
        let iova = GIova::new(0xbbe0_0042);
        let before = m.translate(Sid::new(0), Did::new(0), iova, 0).unwrap().hpa;
        m.migrate_tenant(Did::new(0), 7);
        let after = m.translate(Sid::new(0), Did::new(0), iova, 1).unwrap();
        assert_ne!(after.hpa, before, "migration must move the host frame");
        assert_eq!(after.hpa, m.spaces()[0].lookup(iova).unwrap().0);
        // Walk caches were shot down and the context entry refetched:
        // 2 context reads + full 19-access walk.
        assert_eq!(after.dram_accesses, 21);
        // The other tenant still translates to its original frame.
        let other = m.translate(Sid::new(1), Did::new(1), iova, 2).unwrap();
        assert_eq!(other.hpa, m.spaces()[1].lookup(iova).unwrap().0);
    }

    #[test]
    fn stats_accumulate_dram_reads() {
        let mut m = iommu(1);
        m.translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 0)
            .unwrap();
        m.translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 1)
            .unwrap();
        assert_eq!(m.stats().dram_accesses, 21 + 4);
        assert_eq!(m.dram_accesses(), 21 + 4);
        assert_eq!(m.stats().requests, 2);
    }

    #[test]
    fn translate_batch_matches_sequential_translates() {
        let iovas: Vec<GIova> = [
            0xbbe0_0000u64,
            0x3480_0000,
            0xbbe0_0000, // duplicate: coalesces in the memo
            0xbbe0_4242,
            0x1, // fault mid-batch
            0x3480_0000,
        ]
        .iter()
        .map(|&a| GIova::new(a))
        .collect();

        let mut scalar = iommu(1);
        let want: Vec<_> = iovas
            .iter()
            .enumerate()
            .map(|(i, &iova)| scalar.translate(Sid::new(0), Did::new(0), iova, 100 + i as u64))
            .collect();

        let mut batched = iommu(1);
        let mut got = Vec::new();
        batched.translate_batch(Sid::new(0), Did::new(0), &iovas, 100, &mut got);

        assert_eq!(got, want);
        assert_eq!(batched.stats(), scalar.stats());
        assert_eq!(batched.walk_cache_stats(), scalar.walk_cache_stats());
        assert_eq!(batched.dram_accesses(), scalar.dram_accesses());
    }

    #[test]
    #[should_panic(expected = "indexed by DID")]
    fn spaces_must_be_did_indexed() {
        let _ = Iommu::new(IommuParams::paper(), vec![tenant(1)]);
    }

    fn lazy_iommu(tenants: u32, resident: usize) -> Iommu {
        let canonical = tenant(0);
        let budget = canonical.per_tenant_bytes() * resident as u64;
        Iommu::with_pool(
            IommuParams::paper(),
            SpacePool::lazy(canonical, tenants, Some(budget)),
        )
    }

    #[test]
    fn lazy_pool_translates_identically_to_dense() {
        // Same requests through an eager IOMMU and a 2-resident lazy one:
        // responses, cache stats, and DRAM accounting must be identical
        // even while the lazy pool thrashes (4 tenants round-robin).
        let mut dense = iommu(4);
        let mut lazy = lazy_iommu(4, 2);
        let iovas = [0xbbe0_0000u64, 0x3480_0000, 0xbbe0_4242];
        let mut now = 0u64;
        for round in 0..3 {
            for t in 0..4u32 {
                let iova = GIova::new(iovas[(round + t as usize) % iovas.len()]);
                let a = dense.translate(Sid::new(t), Did::new(t), iova, now);
                let b = lazy.translate(Sid::new(t), Did::new(t), iova, now);
                assert_eq!(a, b, "round {round} tenant {t}");
                now += 1;
            }
        }
        assert_eq!(dense.stats(), lazy.stats());
        assert_eq!(dense.walk_cache_stats(), lazy.walk_cache_stats());
        assert_eq!(dense.dram_accesses(), lazy.dram_accesses());
        let pool = lazy.pool_stats();
        assert!(
            pool.evictions > 0,
            "2-resident pool must evict under 4 tenants"
        );
        assert_eq!(pool.max_resident, 2);
    }

    #[test]
    fn lazy_migration_survives_eviction() {
        let mut m = lazy_iommu(4, 1);
        let iova = GIova::new(0xbbe0_0042);
        let home = m.translate(Sid::new(0), Did::new(0), iova, 0).unwrap().hpa;
        m.migrate_tenant(Did::new(0), 9);
        let moved = m.translate(Sid::new(0), Did::new(0), iova, 1).unwrap().hpa;
        assert_ne!(moved, home);
        // Evict tenant 0 by touching another tenant, then return: the
        // rebuilt tables must still live in slab 9.
        m.translate(Sid::new(1), Did::new(1), iova, 2).unwrap();
        let back = m.translate(Sid::new(0), Did::new(0), iova, 3).unwrap().hpa;
        assert_eq!(back, moved);
    }

    #[test]
    fn wide_dids_do_not_collide_in_the_context_path() {
        // DIDs beyond 65536 used to truncate to 16-bit BDFs; the routing-id
        // widening must keep them distinct. A tiny lazy pool stands in for
        // the >64k-tenant case without building 64k spaces.
        let far = 70_000u32;
        let mut m = lazy_iommu(far + 1, 2);
        let iova = GIova::new(0xbbe0_0000);
        let a = m.translate(Sid::new(4), Did::new(4), iova, 0).unwrap().hpa;
        let b = m
            .translate(Sid::new(far), Did::new(far), iova, 1)
            .unwrap()
            .hpa;
        assert_ne!(a, b, "DID 4 and DID 70000 must map to distinct slabs");
        assert_ne!(
            Bdf::from_routing_id(4 + 65_536).raw() as u32,
            Bdf::from_routing_id(4 + 65_536).routing_id(),
            "the wide BDF actually exercises a nonzero segment"
        );
    }

    #[test]
    fn flat_tables_cost_one_read() {
        let mut m = Iommu::new(IommuParams::paper().with_flat_tables(), vec![tenant(0)]);
        let iova = GIova::new(0xbbe0_0042);
        let r = m.translate(Sid::new(0), Did::new(0), iova, 0).unwrap();
        // 2 context reads + 1 flat entry read.
        assert_eq!(r.dram_accesses, 3);
        // Warm context: a single read per translation.
        let r = m.translate(Sid::new(0), Did::new(0), iova, 1).unwrap();
        assert_eq!(r.dram_accesses, 1);
        assert_eq!(r.latency.as_ns(), 50);
        // Functionally identical to the nested walk.
        let want = m.spaces()[0].lookup(iova).unwrap().0;
        assert_eq!(r.hpa, want);
    }

    #[test]
    fn flat_tables_still_fault_on_unmapped() {
        let mut m = Iommu::new(IommuParams::paper().with_flat_tables(), vec![tenant(0)]);
        assert!(m
            .translate(Sid::new(0), Did::new(0), GIova::new(0x1), 0)
            .is_err());
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn tenants_thrash_unpartitioned_walk_caches() {
        // Many tenants mapping identical gIOVAs contend for the same walk
        // cache sets; with enough tenants, L2 hit rate collapses.
        let tenants = 128u32;
        let mut m = Iommu::new(IommuParams::paper(), (0..tenants).map(tenant).collect());
        let iova = GIova::new(0xbbe0_0000);
        for round in 0..4u64 {
            for t in 0..tenants {
                m.translate(
                    Sid::new(t),
                    Did::new(t),
                    iova,
                    round * tenants as u64 + t as u64,
                )
                .unwrap();
            }
        }
        let (l2, _) = m.walk_cache_stats();
        // The L2 cache has 512 entries but all 128 tenants pile into the
        // same few sets (identical tags): hit rate must be far below 100%.
        assert!(
            l2.hit_rate() < 0.5,
            "expected thrashing, got hit rate {}",
            l2.hit_rate()
        );
    }

    /// Snapshot `src`, restore into `dst`, and check both then translate
    /// identically for a probe sequence.
    fn assert_snapshot_transfers(mut src: Iommu, mut dst: Iommu, tenants: u32) {
        let mut words = Vec::new();
        src.snapshot_words(&mut words);
        let mut r = hypersio_cache::WordReader::new(&words);
        dst.restore_words(&mut r).expect("restore must succeed");
        assert!(r.is_empty(), "restore must consume the whole stream");
        assert_eq!(src.stats(), dst.stats());
        assert_eq!(src.walk_cache_stats(), dst.walk_cache_stats());
        assert_eq!(src.dram_accesses(), dst.dram_accesses());
        let mut now = 1_000_000;
        for t in 0..tenants {
            for iova in [0xbbe0_0000u64, 0x3480_0000, 0x1] {
                let iova = GIova::new(iova);
                let a = src.translate(Sid::new(t), Did::new(t), iova, now);
                let b = dst.translate(Sid::new(t), Did::new(t), iova, now);
                assert_eq!(a, b, "tenant {t} {iova:?}");
                now += 1;
            }
        }
        assert_eq!(src.stats(), dst.stats());
        assert_eq!(src.dram_accesses(), dst.dram_accesses());
    }

    #[test]
    fn snapshot_round_trips_a_dense_iommu_with_migrations() {
        let mut src = iommu(4);
        let iova = GIova::new(0xbbe0_0000);
        for t in 0..4u32 {
            src.translate(Sid::new(t), Did::new(t), iova, t as u64)
                .unwrap();
        }
        src.migrate_tenant(Did::new(2), 9);
        src.translate(Sid::new(2), Did::new(2), iova, 10).unwrap();
        assert_snapshot_transfers(src, iommu(4), 4);
    }

    #[test]
    fn snapshot_round_trips_a_lazy_iommu_mid_eviction() {
        let mut src = lazy_iommu(8, 2);
        let iova = GIova::new(0xbbe0_0042);
        for t in 0..6u32 {
            src.translate(Sid::new(t), Did::new(t), iova, t as u64)
                .unwrap();
        }
        src.migrate_tenant(Did::new(1), 77); // non-resident override
        assert!(src.pool_stats().evictions > 0);
        let dst = lazy_iommu(8, 2);
        let before = src.pool_stats();
        let mut words = Vec::new();
        src.snapshot_words(&mut words);
        let mut restored = lazy_iommu(8, 2);
        let mut r = hypersio_cache::WordReader::new(&words);
        restored.restore_words(&mut r).unwrap();
        assert_eq!(restored.pool_stats(), before);
        assert_snapshot_transfers(src, dst, 8);
    }

    #[test]
    fn snapshot_rejects_configuration_mismatches_and_corruption() {
        let mut src = iommu(2);
        src.translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000), 0)
            .unwrap();
        let mut words = Vec::new();
        src.snapshot_words(&mut words);

        // A lazy IOMMU cannot restore a dense snapshot.
        let mut lazy = lazy_iommu(2, 1);
        let mut r = hypersio_cache::WordReader::new(&words);
        assert!(lazy.restore_words(&mut r).is_none());

        // A nested-TLB IOMMU cannot restore a flat-config snapshot.
        let params = IommuParams {
            walk_caches: WalkCacheConfig::paper_base()
                .with_nested_tlb(hypersio_cache::CacheGeometry::new(64, 8)),
            ..IommuParams::paper()
        };
        let mut nested = Iommu::new(params, (0..2).map(tenant).collect());
        let mut r = hypersio_cache::WordReader::new(&words);
        assert!(nested.restore_words(&mut r).is_none());

        // Every truncation of the stream is rejected, never a panic.
        for len in 0..words.len() {
            let mut dst = iommu(2);
            let mut r = hypersio_cache::WordReader::new(&words[..len]);
            assert!(dst.restore_words(&mut r).is_none(), "prefix {len}");
        }
    }

    #[test]
    fn memory_pressure_relief_is_model_transparent() {
        let mut plain = lazy_iommu(8, 4);
        let mut squeezed = lazy_iommu(8, 4);
        let iova = GIova::new(0xbbe0_0042);
        let mut now = 0;
        for t in 0..4u32 {
            plain
                .translate(Sid::new(t), Did::new(t), iova, now)
                .unwrap();
            squeezed
                .translate(Sid::new(t), Did::new(t), iova, now)
                .unwrap();
            now += 1;
        }
        let (evicted, memo_dropped) = squeezed.relieve_memory_pressure();
        assert!(evicted > 0, "4 residents over a halved cap must evict");
        assert!(memo_dropped > 0, "warm memo must have entries to drop");
        for round in 0..2 {
            for t in 0..8u32 {
                let a = plain.translate(Sid::new(t), Did::new(t), iova, now);
                let b = squeezed.translate(Sid::new(t), Did::new(t), iova, now);
                assert_eq!(a, b, "round {round} tenant {t}");
                now += 1;
            }
        }
        assert_eq!(plain.stats(), squeezed.stats());
        assert_eq!(plain.walk_cache_stats(), squeezed.walk_cache_stats());
    }
}
