//! Context cache: BDF → context-entry lookup ("CC"/"CE" in the paper's
//! Fig 3).

use hypersio_cache::{CacheKey, FullyAssocCache, OracleKey, PolicyKind};
use hypersio_types::{Bdf, Did};

/// A context entry: the per-device configuration the IOMMU reads before it
/// can translate for that device.
///
/// Holds the domain ID assigned by the host and (implicitly, via the DID)
/// the roots of the tenant's translation tables.
///
/// # Examples
///
/// ```
/// use hypersio_mem::ContextEntry;
/// use hypersio_types::Did;
///
/// let ce = ContextEntry::new(Did::new(5));
/// assert_eq!(ce.did(), Did::new(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextEntry {
    did: Did,
}

impl ContextEntry {
    /// Creates a context entry for domain `did`.
    pub fn new(did: Did) -> Self {
        ContextEntry { did }
    }

    /// Returns the domain ID.
    pub fn did(&self) -> Did {
        self.did
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BdfKey(Bdf);

impl CacheKey for BdfKey {
    fn set_selector(&self) -> u64 {
        self.0.routing_id() as u64
    }
}

impl OracleKey for BdfKey {
    fn oracle_code(&self) -> u64 {
        self.0.routing_id() as u64
    }
}

impl hypersio_cache::WordCodec for BdfKey {
    const WORDS: usize = 1;

    fn encode_words(&self, out: &mut Vec<u64>) {
        out.push(self.0.routing_id() as u64);
    }

    fn decode_words(words: &[u64]) -> Option<Self> {
        let raw = u32::try_from(*words.first()?).ok()?;
        Some(BdfKey(Bdf::from_routing_id(raw)))
    }
}

/// The IOMMU's context cache.
///
/// On a miss, hardware reads the root-table entry and the context entry
/// from memory (two DRAM accesses) — [`ContextCache::lookup_or_fetch`]
/// reports how many such reads the access cost so the caller can charge
/// them.
///
/// # Examples
///
/// ```
/// use hypersio_mem::{ContextCache, ContextEntry};
/// use hypersio_types::{Bdf, Did};
///
/// let mut cc = ContextCache::new(64);
/// cc.install(Bdf::new(7), ContextEntry::new(Did::new(7)));
/// let (ce, memory_reads) = cc.lookup_or_fetch(Bdf::new(7), 0).unwrap();
/// assert_eq!(memory_reads, 2); // cold miss fetches root + context entry
/// let (_, memory_reads) = cc.lookup_or_fetch(Bdf::new(7), 1).unwrap();
/// assert_eq!(memory_reads, 0); // now cached
/// ```
#[derive(Debug)]
pub struct ContextCache {
    /// The architected context table (in "memory"): every configured device.
    /// Probed on every context-cache miss — at 1024 tenants the 64-entry
    /// cache thrashes and nearly every translate lands here — so it uses the
    /// cheap Fx hasher. The map is never iterated (eviction order comes from
    /// the fronting cache), so hash order cannot affect behaviour.
    table: std::collections::HashMap<Bdf, ContextEntry, hypersio_types::fxhash::FxBuildHasher>,
    cache: FullyAssocCache<BdfKey, ContextEntry>,
}

/// DRAM reads charged for a context-cache miss (root entry + context entry).
pub(crate) const CONTEXT_MISS_READS: u64 = 2;

impl ContextCache {
    /// Creates a context cache with `entries` slots (LRU).
    pub fn new(entries: usize) -> Self {
        ContextCache {
            table: std::collections::HashMap::default(),
            cache: FullyAssocCache::new(entries, PolicyKind::Lru),
        }
    }

    /// Installs (or replaces) the context entry for `bdf` in the in-memory
    /// context table, as the hypervisor does when assigning a VF.
    pub fn install(&mut self, bdf: Bdf, entry: ContextEntry) {
        self.table.insert(bdf, entry);
    }

    /// Looks up the context entry for `bdf`, fetching from memory on a miss.
    ///
    /// Returns the entry and the number of DRAM reads the lookup cost
    /// (0 on a cache hit, 2 on a miss).
    ///
    /// Returns `None` if no context entry was ever installed for `bdf` —
    /// the device is not configured and the request must fault.
    pub fn lookup_or_fetch(&mut self, bdf: Bdf, now: u64) -> Option<(ContextEntry, u64)> {
        let key = BdfKey(bdf);
        if let Some(entry) = self.cache.lookup(&key, now) {
            return Some((*entry, 0));
        }
        let entry = *self.table.get(&bdf)?;
        self.cache.insert(key, entry, now);
        Some((entry, CONTEXT_MISS_READS))
    }

    /// Invalidates the cached entry for `bdf` (e.g. after reassignment).
    pub fn invalidate(&mut self, bdf: Bdf) {
        let _ = self.cache.invalidate(&BdfKey(bdf));
    }

    /// Returns cache statistics.
    pub fn stats(&self) -> &hypersio_cache::CacheStats {
        self.cache.stats()
    }

    /// Appends the *cache* contents (not the architected table, which the
    /// IOMMU re-derives from tenant residency) to a checkpoint stream.
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        self.cache.snapshot_words(out);
    }

    /// Restores the cache contents captured by [`Self::snapshot_words`].
    /// Returns `None` (leaving the cache in an unspecified but safe state)
    /// if the stream is corrupt.
    pub fn restore_words(&mut self, r: &mut hypersio_cache::WordReader<'_>) -> Option<()> {
        self.cache.restore_words(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_device_is_none() {
        let mut cc = ContextCache::new(4);
        assert_eq!(cc.lookup_or_fetch(Bdf::new(1), 0), None);
    }

    #[test]
    fn miss_then_hit_costs() {
        let mut cc = ContextCache::new(4);
        cc.install(Bdf::new(1), ContextEntry::new(Did::new(1)));
        let (_, reads) = cc.lookup_or_fetch(Bdf::new(1), 0).unwrap();
        assert_eq!(reads, 2);
        let (_, reads) = cc.lookup_or_fetch(Bdf::new(1), 1).unwrap();
        assert_eq!(reads, 0);
    }

    #[test]
    fn capacity_evictions_refetch() {
        let mut cc = ContextCache::new(2);
        for i in 0..3u16 {
            cc.install(Bdf::new(i), ContextEntry::new(Did::new(i as u32)));
        }
        for i in 0..3u16 {
            cc.lookup_or_fetch(Bdf::new(i), i as u64).unwrap();
        }
        // Bdf 0 was LRU-evicted by the third fill.
        let (_, reads) = cc.lookup_or_fetch(Bdf::new(0), 10).unwrap();
        assert_eq!(reads, 2);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut cc = ContextCache::new(4);
        cc.install(Bdf::new(9), ContextEntry::new(Did::new(9)));
        cc.lookup_or_fetch(Bdf::new(9), 0).unwrap();
        cc.invalidate(Bdf::new(9));
        let (_, reads) = cc.lookup_or_fetch(Bdf::new(9), 1).unwrap();
        assert_eq!(reads, 2);
    }

    #[test]
    fn reinstall_updates_entry() {
        let mut cc = ContextCache::new(4);
        cc.install(Bdf::new(3), ContextEntry::new(Did::new(3)));
        cc.lookup_or_fetch(Bdf::new(3), 0).unwrap();
        cc.install(Bdf::new(3), ContextEntry::new(Did::new(33)));
        cc.invalidate(Bdf::new(3));
        let (ce, _) = cc.lookup_or_fetch(Bdf::new(3), 1).unwrap();
        assert_eq!(ce.did(), Did::new(33));
    }
}
