//! IOMMU page-walk caches (the "L2TLB"/"L3TLB" of Tables II and IV).
//!
//! These cache guest page-table entries at intermediate levels, letting the
//! two-dimensional walker skip the upper portion of the first-level walk —
//! and with it the nested host walks for each skipped level. HyperTRIO
//! additionally partitions them by SID (Table IV: 32 partitions for the
//! L2TLB, 64 for the L3TLB).

use hypersio_cache::{
    CacheGeometry, CacheKey, OracleKey, PartitionSpec, PartitionedCache, PolicyKind,
};
use hypersio_types::{Did, GIova, GPa, HPa, Sid};

use crate::page_table::Pte;

/// Key of a walk-cache entry: the tenant's DID plus the gIOVA bits covering
/// the subtree rooted at the cached level.
///
/// An L2 entry caches the guest level-2 PTE for a 2 MB-aligned region
/// (`iova >> 21`); an L3 entry caches the level-3 PTE for a 1 GB region
/// (`iova >> 30`).
///
/// These tags are geometry-independent: every supported
/// [`crate::WalkGeometry`] uses 9-bit non-root indices over a 12-bit page
/// offset, so level 2 always spans 2 MiB and level 3 always 1 GiB (for
/// Sv39 the level-3 entry is the root PTE). Only the *number* of levels —
/// and hence which skips are possible — varies by architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkCacheKey {
    /// The owning tenant's domain ID.
    pub did: Did,
    /// The gIOVA right-shifted by the cached level's coverage.
    pub tag: u64,
}

impl WalkCacheKey {
    /// Builds the level-2 key for `iova` (one entry per 2 MB region).
    pub fn level2(did: Did, iova: GIova) -> Self {
        WalkCacheKey {
            did,
            tag: iova.raw() >> 21,
        }
    }

    /// Builds the level-3 key for `iova` (one entry per 1 GB region).
    pub fn level3(did: Did, iova: GIova) -> Self {
        WalkCacheKey {
            did,
            tag: iova.raw() >> 30,
        }
    }
}

impl CacheKey for WalkCacheKey {
    fn set_selector(&self) -> u64 {
        // Index by address bits; identical driver layouts across tenants
        // collide in the same sets unless partitioned (§IV-D).
        self.tag
    }
}

impl OracleKey for WalkCacheKey {
    fn oracle_code(&self) -> u64 {
        ((self.did.raw() as u64) << 40) ^ self.tag
    }
}

/// Key of a nested-TLB entry: the tenant's DID plus the guest-physical
/// page number being re-translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NestedKey {
    /// The owning tenant's domain ID.
    pub did: Did,
    /// The guest-physical 4 KB page number.
    pub gfn: u64,
}

impl NestedKey {
    /// Builds the key for `gpa`'s 4 KB page.
    pub fn new(did: Did, gpa: GPa) -> Self {
        NestedKey {
            did,
            gfn: gpa.raw() >> 12,
        }
    }
}

impl CacheKey for NestedKey {
    fn set_selector(&self) -> u64 {
        self.gfn
    }
}

impl OracleKey for NestedKey {
    fn oracle_code(&self) -> u64 {
        ((self.did.raw() as u64) << 44) ^ self.gfn
    }
}

/// Configuration of the two walk caches.
///
/// # Examples
///
/// ```
/// use hypersio_mem::WalkCacheConfig;
///
/// let base = WalkCacheConfig::paper_base();
/// assert_eq!(base.l2_geometry.entries(), 512);
/// let ht = WalkCacheConfig::paper_hypertrio();
/// assert_eq!(ht.l2_partitions.partitions(), 32);
/// assert_eq!(ht.l3_partitions.partitions(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct WalkCacheConfig {
    /// Geometry of the level-2 page cache (Table II: 512 entries, 16 ways).
    pub l2_geometry: CacheGeometry,
    /// Geometry of the level-3 page cache (Table II: 1024 entries, 16 ways).
    pub l3_geometry: CacheGeometry,
    /// SID partitioning of the L2 cache (Table IV: 1 or 32 partitions).
    pub l2_partitions: PartitionSpec,
    /// SID partitioning of the L3 cache (Table IV: 1 or 64 partitions).
    pub l3_partitions: PartitionSpec,
    /// Replacement policy (the paper uses LFU for both configurations).
    pub policy: PolicyKind,
    /// Optional nested (gPA -> hPA) TLB short-circuiting the second-level
    /// walks, as in the designs the paper's §II cites. `None` (the paper's
    /// Table II configuration) performs every host walk in full.
    pub nested_tlb: Option<CacheGeometry>,
}

impl WalkCacheConfig {
    /// Table IV "Base": shared (single-partition) caches, LFU.
    pub fn paper_base() -> Self {
        WalkCacheConfig {
            l2_geometry: CacheGeometry::new(512, 16),
            l3_geometry: CacheGeometry::new(1024, 16),
            l2_partitions: PartitionSpec::unified(),
            l3_partitions: PartitionSpec::unified(),
            policy: PolicyKind::Lfu,
            nested_tlb: None,
        }
    }

    /// Adds a nested (gPA -> hPA) TLB of the given geometry (an extension
    /// beyond the paper's Table II configuration).
    pub fn with_nested_tlb(mut self, geometry: CacheGeometry) -> Self {
        self.nested_tlb = Some(geometry);
        self
    }

    /// Table IV "HyperTRIO": 32-way L2 partitioning, 64-way L3 partitioning.
    pub fn paper_hypertrio() -> Self {
        WalkCacheConfig {
            l2_partitions: PartitionSpec::new(32),
            l3_partitions: PartitionSpec::new(64),
            ..WalkCacheConfig::paper_base()
        }
    }
}

impl Default for WalkCacheConfig {
    fn default() -> Self {
        WalkCacheConfig::paper_base()
    }
}

/// The pair of walk caches consulted (and filled) by the walker.
#[derive(Debug)]
pub struct WalkCaches {
    l2: PartitionedCache<WalkCacheKey, Pte>,
    l3: PartitionedCache<WalkCacheKey, Pte>,
    nested: Option<PartitionedCache<NestedKey, HPa>>,
}

impl WalkCaches {
    /// Creates walk caches from a configuration.
    pub fn new(config: &WalkCacheConfig) -> Self {
        WalkCaches {
            l2: PartitionedCache::new(
                config.l2_geometry,
                config.l2_partitions,
                config.policy.clone(),
            ),
            l3: PartitionedCache::new(
                config.l3_geometry,
                config.l3_partitions,
                config.policy.clone(),
            ),
            nested: config
                .nested_tlb
                .map(|g| PartitionedCache::new(g, PartitionSpec::unified(), config.policy.clone())),
        }
    }

    /// Returns true if a nested TLB is configured.
    pub fn has_nested_tlb(&self) -> bool {
        self.nested.is_some()
    }

    /// Looks up the cached host translation of `gpa`'s page, if a nested
    /// TLB is configured.
    pub fn lookup_nested(&mut self, sid: Sid, did: Did, gpa: GPa, now: u64) -> Option<HPa> {
        self.nested
            .as_mut()
            .and_then(|n| n.lookup(sid, &NestedKey::new(did, gpa), now).copied())
    }

    /// Fills the nested TLB after a completed host walk (no-op when not
    /// configured).
    pub fn fill_nested(&mut self, sid: Sid, did: Did, gpa: GPa, hpa_page: HPa, now: u64) {
        if let Some(n) = self.nested.as_mut() {
            n.insert(sid, NestedKey::new(did, gpa), hpa_page, now);
        }
    }

    /// Returns nested-TLB statistics, if configured.
    pub fn nested_stats(&self) -> Option<hypersio_cache::CacheStats> {
        self.nested.as_ref().map(|n| *n.stats())
    }

    /// Looks up the cached guest level-2 PTE for (`sid`, `did`, `iova`).
    pub fn lookup_l2(&mut self, sid: Sid, did: Did, iova: GIova, now: u64) -> Option<Pte> {
        self.l2
            .lookup(sid, &WalkCacheKey::level2(did, iova), now)
            .copied()
    }

    /// Looks up the cached guest level-3 PTE for (`sid`, `did`, `iova`).
    pub fn lookup_l3(&mut self, sid: Sid, did: Did, iova: GIova, now: u64) -> Option<Pte> {
        self.l3
            .lookup(sid, &WalkCacheKey::level3(did, iova), now)
            .copied()
    }

    /// Fills the level-2 cache after the walker reads a guest L2 PTE.
    pub fn fill_l2(&mut self, sid: Sid, did: Did, iova: GIova, pte: Pte, now: u64) {
        self.l2
            .insert(sid, WalkCacheKey::level2(did, iova), pte, now);
    }

    /// Fills the level-3 cache after the walker reads a guest L3 PTE.
    pub fn fill_l3(&mut self, sid: Sid, did: Did, iova: GIova, pte: Pte, now: u64) {
        self.l3
            .insert(sid, WalkCacheKey::level3(did, iova), pte, now);
    }

    /// Returns (L2 stats, L3 stats).
    pub fn stats(&self) -> (hypersio_cache::CacheStats, hypersio_cache::CacheStats) {
        (*self.l2.stats(), *self.l3.stats())
    }

    /// Drops only the guest-level (L2/L3) entries, keeping the nested TLB —
    /// used by tests to isolate the nested TLB's contribution.
    #[doc(hidden)]
    pub fn clear_guest_only_for_test(&mut self) {
        self.l2.clear();
        self.l3.clear();
    }

    /// Shoots down every entry belonging to `did` at every level — L2, L3,
    /// and the nested TLB when configured. Returns the number removed.
    pub fn invalidate_did(&mut self, did: Did) -> usize {
        let mut removed = self.l2.invalidate_matching(|k| k.did == did);
        removed += self.l3.invalidate_matching(|k| k.did == did);
        if let Some(n) = self.nested.as_mut() {
            removed += n.invalidate_matching(|k| k.did == did);
        }
        removed
    }

    /// Drops all cached entries (statistics are kept).
    pub fn clear(&mut self) {
        self.l2.clear();
        self.l3.clear();
        if let Some(n) = self.nested.as_mut() {
            n.clear();
        }
    }

    /// Appends the full contents and statistics of every level (L2, L3,
    /// and the nested TLB when configured) to a checkpoint stream.
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        self.l2.snapshot_words(out);
        self.l3.snapshot_words(out);
        match &self.nested {
            Some(n) => {
                out.push(1);
                n.snapshot_words(out);
            }
            None => out.push(0),
        }
    }

    /// Restores contents captured by [`Self::snapshot_words`] into caches
    /// of the same configuration. Returns `None` on a corrupt stream or a
    /// configuration mismatch (e.g. a nested TLB present on one side only).
    pub fn restore_words(&mut self, r: &mut hypersio_cache::WordReader<'_>) -> Option<()> {
        self.l2.restore_words(r)?;
        self.l3.restore_words(r)?;
        match (r.next()?, self.nested.as_mut()) {
            (0, None) => Some(()),
            (1, Some(n)) => n.restore_words(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersio_types::PageSize;

    fn leaf(target: u64) -> Pte {
        Pte::Leaf {
            target,
            size: PageSize::Size2M,
        }
    }

    #[test]
    fn keys_cover_expected_regions() {
        let did = Did::new(1);
        let a = WalkCacheKey::level2(did, GIova::new(0xbbe0_0000));
        let b = WalkCacheKey::level2(did, GIova::new(0xbbff_ffff));
        let c = WalkCacheKey::level2(did, GIova::new(0xbc00_0000));
        assert_eq!(a, b);
        assert_ne!(a, c);

        let d = WalkCacheKey::level3(did, GIova::new(0x0000_0000));
        let e = WalkCacheKey::level3(did, GIova::new(0x3fff_ffff));
        let f = WalkCacheKey::level3(did, GIova::new(0x4000_0000));
        assert_eq!(d, e);
        assert_ne!(d, f);
    }

    #[test]
    fn dids_do_not_alias() {
        let a = WalkCacheKey::level2(Did::new(0), GIova::new(0xbbe0_0000));
        let b = WalkCacheKey::level2(Did::new(1), GIova::new(0xbbe0_0000));
        assert_ne!(a, b);
        assert_ne!(a.oracle_code(), b.oracle_code());
        // Same set selector though: that is the §IV-D conflict.
        assert_eq!(a.set_selector(), b.set_selector());
    }

    #[test]
    fn fill_then_lookup_round_trip() {
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        let (sid, did, iova) = (Sid::new(0), Did::new(0), GIova::new(0xbbe0_0000));
        assert_eq!(caches.lookup_l2(sid, did, iova, 0), None);
        caches.fill_l2(sid, did, iova, leaf(0x4000_0000), 1);
        assert_eq!(caches.lookup_l2(sid, did, iova, 2), Some(leaf(0x4000_0000)));
        let (l2, _) = caches.stats();
        assert_eq!(l2.hits(), 1);
        assert_eq!(l2.misses(), 1);
    }

    #[test]
    fn partitioned_config_isolates_tenants() {
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_hypertrio());
        let iova = GIova::new(0xbbe0_0000);
        // Tenant 0 fills its partition; tenant 1's lookups miss but tenant
        // 1's fills cannot evict tenant 0's entry even under flooding.
        caches.fill_l2(Sid::new(0), Did::new(0), iova, leaf(0x1), 0);
        for i in 0..10_000u64 {
            caches.fill_l2(
                Sid::new(1),
                Did::new(1),
                GIova::new(i << 21),
                leaf(i),
                1 + i,
            );
        }
        assert_eq!(
            caches.lookup_l2(Sid::new(0), Did::new(0), iova, 20_000),
            Some(leaf(0x1))
        );
    }

    #[test]
    fn nested_tlb_round_trip() {
        let cfg = WalkCacheConfig::paper_base().with_nested_tlb(CacheGeometry::new(64, 8));
        let mut caches = WalkCaches::new(&cfg);
        assert!(caches.has_nested_tlb());
        let (sid, did) = (Sid::new(0), Did::new(0));
        let gpa = GPa::new(0x8000_1234);
        assert_eq!(caches.lookup_nested(sid, did, gpa, 0), None);
        caches.fill_nested(sid, did, gpa, HPa::new(0x10_0000_0000), 1);
        // Any address in the same 4K page hits.
        assert_eq!(
            caches.lookup_nested(sid, did, GPa::new(0x8000_1fff), 2),
            Some(HPa::new(0x10_0000_0000))
        );
        assert_eq!(
            caches.lookup_nested(sid, did, GPa::new(0x8000_2000), 3),
            None
        );
        let stats = caches.nested_stats().unwrap();
        assert_eq!(stats.hits(), 1);
        caches.clear();
        assert_eq!(caches.lookup_nested(sid, did, gpa, 4), None);
    }

    #[test]
    fn nested_tlb_absent_by_default() {
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        assert!(!caches.has_nested_tlb());
        assert_eq!(
            caches.lookup_nested(Sid::new(0), Did::new(0), GPa::new(0x1000), 0),
            None
        );
        caches.fill_nested(
            Sid::new(0),
            Did::new(0),
            GPa::new(0x1000),
            HPa::new(0x2000),
            1,
        );
        assert!(caches.nested_stats().is_none());
    }

    #[test]
    fn invalidate_did_sweeps_every_level() {
        let cfg = WalkCacheConfig::paper_base().with_nested_tlb(CacheGeometry::new(64, 8));
        let mut caches = WalkCaches::new(&cfg);
        let (sid, iova) = (Sid::new(0), GIova::new(0xbbe0_0000));
        for did in [Did::new(0), Did::new(1)] {
            caches.fill_l2(sid, did, iova, leaf(1), 0);
            caches.fill_l3(sid, did, iova, leaf(2), 0);
            caches.fill_nested(sid, did, GPa::new(0x8000_0000), HPa::new(0x1000), 0);
        }
        assert_eq!(caches.invalidate_did(Did::new(0)), 3);
        // Every level of DID 0 misses; DID 1 is untouched.
        assert_eq!(caches.lookup_l2(sid, Did::new(0), iova, 1), None);
        assert_eq!(caches.lookup_l3(sid, Did::new(0), iova, 2), None);
        assert_eq!(
            caches.lookup_nested(sid, Did::new(0), GPa::new(0x8000_0000), 3),
            None
        );
        assert!(caches.lookup_l2(sid, Did::new(1), iova, 4).is_some());
        assert!(caches.lookup_l3(sid, Did::new(1), iova, 5).is_some());
        assert!(caches
            .lookup_nested(sid, Did::new(1), GPa::new(0x8000_0000), 6)
            .is_some());
    }

    #[test]
    fn clear_empties_both() {
        let mut caches = WalkCaches::new(&WalkCacheConfig::paper_base());
        let (sid, did, iova) = (Sid::new(0), Did::new(0), GIova::new(0x4000_0000));
        caches.fill_l2(sid, did, iova, leaf(1), 0);
        caches.fill_l3(sid, did, iova, leaf(2), 0);
        caches.clear();
        assert_eq!(caches.lookup_l2(sid, did, iova, 1), None);
        assert_eq!(caches.lookup_l3(sid, did, iova, 2), None);
    }
}
