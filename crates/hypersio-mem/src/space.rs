//! Per-tenant address spaces: paired guest and host page tables.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hypersio_types::{Did, GIova, GPa, HPa, PageSize};

use crate::geometry::WalkGeometry;
use crate::page_table::{InlineWalkPath, PageTableError, RadixTable, WalkPath};

/// Base of the guest-physical region where each tenant's guest page-table
/// nodes are placed.
const GUEST_TABLE_BASE: u64 = 0x4000_0000;

/// Base of the guest-physical region backing mapped data pages.
const GUEST_DATA_BASE: u64 = 0x8000_0000;

/// Size of the host-physical slab reserved per tenant (enough for every page
/// a workload tenant maps: 32 × 2 MB data buffers plus table nodes and 4 KB
/// pages, with headroom).
pub(crate) const HOST_SLAB_PER_TENANT: u64 = 256 * 1024 * 1024;

/// Issues process-unique layout identities (see [`TenantSpace::layout_id`]).
/// Two spaces share an id only when they were stamped from the same
/// canonical build, which is what makes cross-tenant memo sharing sound.
static NEXT_LAYOUT_ID: AtomicU64 = AtomicU64::new(0);

fn next_layout_id() -> u64 {
    NEXT_LAYOUT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Builder assembling one tenant's [`TenantSpace`] from its page inventory.
///
/// # Examples
///
/// ```
/// use hypersio_mem::TenantSpace;
/// use hypersio_types::{Did, GIova, PageSize};
///
/// let mut builder = TenantSpace::builder(Did::new(3));
/// builder.map(GIova::new(0x3480_0000), PageSize::Size4K);
/// builder.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
/// let space = builder.build();
/// assert_eq!(space.did(), Did::new(3));
/// assert!(space.lookup(GIova::new(0xbbe0_0042)).is_some());
/// ```
pub struct TenantSpaceBuilder {
    did: Did,
    pages: Vec<(GIova, PageSize)>,
    geometry: WalkGeometry,
}

impl TenantSpaceBuilder {
    /// Creates a builder for tenant `did`
    /// ([`WalkGeometry::X86Nested4`] tables by default).
    pub fn new(did: Did) -> Self {
        TenantSpaceBuilder {
            did,
            pages: Vec::new(),
            geometry: WalkGeometry::X86Nested4,
        }
    }

    /// Builds the tenant's tables in the given walk geometry: guest and
    /// host level counts, G-stage root widening, and the full-walk cost
    /// (`G x (H + 1) + H` memory accesses: 24 for x86-4, 35 for x86-5, 15
    /// for Sv39x4, 24 for Sv48x4) all derive from it.
    pub fn geometry(&mut self, geometry: WalkGeometry) -> &mut Self {
        self.geometry = geometry;
        self
    }

    /// Legacy shim for the x86 geometries: `levels`-deep radix tables in
    /// both dimensions (4 maps to [`WalkGeometry::X86Nested4`], 5 to
    /// [`WalkGeometry::X86Nested5`]). Prefer
    /// [`TenantSpaceBuilder::geometry`].
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 4 or 5.
    pub fn levels(&mut self, levels: u8) -> &mut Self {
        self.geometry(match levels {
            4 => WalkGeometry::X86Nested4,
            5 => WalkGeometry::X86Nested5,
            other => panic!("no x86 nested geometry with {other} levels"),
        })
    }

    /// Adds a gIOVA page to the tenant's device-visible mapping.
    ///
    /// Duplicate pages are tolerated (mapped once); the address is truncated
    /// to the page boundary.
    pub fn map(&mut self, iova: GIova, size: PageSize) -> &mut Self {
        self.pages.push((iova.page(size).base(), size));
        self
    }

    /// Builds the paired guest and host tables.
    ///
    /// Layout is fully deterministic given the page list and DID:
    /// - guest data frames are allocated bump-style from a per-tenant
    ///   guest-physical base *identical across tenants* (same OS + driver,
    ///   §IV-D), so two tenants mapping the same gIOVAs also get the same
    ///   gPAs — maximising cache-index conflicts exactly as in the paper;
    /// - host frames come from a per-DID slab, so different tenants get
    ///   different hPAs (true isolation at the host level).
    ///
    /// # Panics
    ///
    /// Panics if the page inventory overflows the per-tenant host slab,
    /// or if two added pages overlap with different sizes.
    pub fn build(&self) -> TenantSpace {
        self.build_with_did(self.did)
    }

    /// Builds the paired tables for every DID in `dids`, sharing the work.
    ///
    /// The layout produced by [`TenantSpaceBuilder::build`] is *affine in
    /// the DID*: the guest dimension (table nodes, data frames) is
    /// DID-independent by design (§IV-D — same OS and driver in every
    /// tenant), and every host-side address is `canonical + did * slab`
    /// because host frames and host table nodes are bump-allocated in an
    /// identical, DID-independent order from per-DID slab bases that are
    /// one uniform stride apart. (The stride is a multiple of every page
    /// alignment that fits in a slab, so alignment padding is identical
    /// across DIDs too.) This method exploits that: it replays the page
    /// inventory once to build the canonical DID-0 space, then stamps out
    /// each requested tenant by cloning the guest table and
    /// [rebasing](RadixTable::rebased) the host table — turning the
    /// O(tenants × pages) construction into O(pages + tenants × nodes).
    ///
    /// The result is bit-identical to calling `build()` once per DID.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TenantSpaceBuilder::build`].
    pub fn build_many(&self, dids: &[Did]) -> Vec<TenantSpace> {
        let canonical = self.build_with_did(Did::new(0));
        dids.iter()
            .map(|&did| canonical.stamp(did, did.raw() as u64))
            .collect()
    }

    fn build_with_did(&self, did: Did) -> TenantSpace {
        let host_slab_base = 0x10_0000_0000 + did.raw() as u64 * HOST_SLAB_PER_TENANT;
        let mut host_next = host_slab_base;
        let mut alloc_host = move || {
            let a = host_next;
            host_next += 4096;
            a
        };

        let mut guest_table_next = GUEST_TABLE_BASE;
        let mut alloc_guest_node = move || {
            let a = guest_table_next;
            guest_table_next += 4096;
            a
        };

        let mut guest = RadixTable::new(self.geometry.guest_levels(), &mut alloc_guest_node);
        let mut guest_data_next = GUEST_DATA_BASE;

        let mut mapped: Vec<(GIova, PageSize)> = Vec::new();
        for &(iova, size) in &self.pages {
            if mapped.iter().any(|&(existing, _)| existing == iova) {
                continue;
            }
            // Align the guest-data bump pointer to the page size.
            let align = size.bytes();
            guest_data_next = (guest_data_next + align - 1) & !(align - 1);
            let gpa = guest_data_next;
            guest_data_next += align;
            match guest.map(iova.raw(), gpa, size, &mut alloc_guest_node) {
                Ok(()) => mapped.push((iova, size)),
                Err(PageTableError::AlreadyMapped { .. }) => {}
                Err(e) => panic!("guest mapping failed for {iova}: {e}"),
            }
        }

        // Host table: every guest-physical page the device walk can touch
        // must be mapped — the guest table nodes themselves plus the data
        // frames. Host table nodes live in host memory and need no mapping.
        let mut host_table_next = 0x20_0000_0000 + did.raw() as u64 * HOST_SLAB_PER_TENANT;
        let mut alloc_host_node = move || {
            let a = host_table_next;
            host_table_next += 4096;
            a
        };
        // The host (G-stage) table: RISC-V x4 geometries widen its root
        // level by 2 bits; x86 geometries pass 0 and build exactly the
        // pre-geometry table.
        let mut host = RadixTable::with_root_widening(
            self.geometry.host_levels(),
            self.geometry.host_root_extra_bits(),
            &mut alloc_host_node,
        );

        let guest_node_addrs: Vec<u64> = {
            let mut v: Vec<u64> = guest.node_addrs().collect();
            v.sort_unstable();
            v
        };
        for node in guest_node_addrs {
            let hpa = alloc_host();
            host.map(node, hpa, PageSize::Size4K, &mut alloc_host_node)
                .expect("guest table nodes are distinct 4K pages");
        }
        for &(iova, size) in &mapped {
            let gpa = guest
                .translate(iova.raw())
                .expect("just mapped in the guest table");
            // Host frames mirror the guest alignment.
            let hpa = match size {
                PageSize::Size4K => alloc_host(),
                PageSize::Size2M | PageSize::Size1G => {
                    // Burn allocator space up to alignment, then take a run.
                    let mut base = alloc_host();
                    while base & size.offset_mask() != 0 {
                        base = alloc_host();
                    }
                    // Reserve the rest of the huge frame.
                    for _ in 0..(size.bytes() / 4096 - 1) {
                        let _ = alloc_host();
                    }
                    base
                }
            };
            assert!(
                hpa + size.bytes() <= host_slab_base + HOST_SLAB_PER_TENANT,
                "tenant {did} page inventory overflows its host slab"
            );
            host.map(gpa & !size.offset_mask(), hpa, size, &mut alloc_host_node)
                .expect("guest data frames are distinct");
        }

        TenantSpace {
            did,
            geometry: self.geometry,
            guest: Arc::new(guest),
            host,
            host_slab: did.raw() as u64,
            layout_id: next_layout_id(),
            host_delta: 0,
            page_count: mapped.len(),
        }
    }
}

/// One tenant's translation state: its guest table (gIOVA → gPA, nodes in
/// guest-physical memory) and host table (gPA → hPA).
///
/// Every guest-physical address the device-side walk can touch — guest
/// table nodes and data frames — is mapped in the host table, so the
/// two-dimensional walker never faults on a nested access.
pub struct TenantSpace {
    did: Did,
    /// The walk geometry both tables were built in; siblings stamped from
    /// one canonical build always share it.
    geometry: WalkGeometry,
    /// Guest table, shared across all spaces stamped from one canonical
    /// build: the guest dimension is DID-independent (same OS + driver,
    /// §IV-D) and never mutated after construction, so a million tenants
    /// reference one copy.
    guest: Arc<RadixTable>,
    host: RadixTable,
    /// Index of the host-physical slab the host table currently lives in
    /// (`did` at build time; bumped by [`TenantSpace::migrate_to_slab`]).
    host_slab: u64,
    /// Identity of the canonical layout this space was stamped from.
    /// Spaces produced by one [`TenantSpaceBuilder::build_many`] call share
    /// an id; each [`TenantSpaceBuilder::build`] gets a fresh one.
    layout_id: u64,
    /// Offset of every host-side address relative to the canonical layout
    /// (`did * slab` at stamp-out time, adjusted by each migration). The
    /// guest dimension is canonical as-is.
    host_delta: u64,
    page_count: usize,
}

impl TenantSpace {
    /// Starts building a tenant space for `did`.
    pub fn builder(did: Did) -> TenantSpaceBuilder {
        TenantSpaceBuilder::new(did)
    }

    /// Returns the tenant's domain ID.
    pub fn did(&self) -> Did {
        self.did
    }

    /// Returns the walk geometry this space was built in.
    pub fn geometry(&self) -> WalkGeometry {
        self.geometry
    }

    /// Returns the number of distinct device-visible pages.
    pub fn page_count(&self) -> usize {
        self.page_count
    }

    /// Returns the index of the host slab currently backing this tenant.
    pub fn host_slab(&self) -> u64 {
        self.host_slab
    }

    /// Relocates the tenant's host-side memory to slab `slab`, as a VM
    /// migration does: every host frame and host table node moves to the
    /// new slab while the guest dimension (same OS, same driver, same
    /// gIOVAs and gPAs) is untouched. Uses [`RadixTable::rebased`] to
    /// re-stamp the host table in one pass. Callers must shoot down every
    /// cached translation of this DID afterwards — the old hPAs are stale.
    pub fn migrate_to_slab(&mut self, slab: u64) {
        let delta = slab
            .wrapping_sub(self.host_slab)
            .wrapping_mul(HOST_SLAB_PER_TENANT);
        self.host = self.host.rebased(delta);
        self.host_delta = self.host_delta.wrapping_add(delta);
        self.host_slab = slab;
    }

    /// Stamps out the sibling space for `did` hosted in slab `slab` from
    /// this *canonical* (unrebased, slab-0) space: the guest table is
    /// shared by reference, the host table is
    /// [rebased](RadixTable::rebased) into the slab, and the layout
    /// identity is inherited — exactly what
    /// [`TenantSpaceBuilder::build_many`] produces for `slab == did`, and
    /// what a lazy pool rebuilds on first touch or after eviction.
    ///
    /// Stamping is deterministic: the same `(canonical, did, slab)` always
    /// yields a bit-identical space, which is why eviction plus rebuild
    /// cannot change any translation.
    pub fn stamp(&self, did: Did, slab: u64) -> TenantSpace {
        debug_assert_eq!(
            self.host_delta, 0,
            "stamp from the canonical build, not a rebased sibling"
        );
        let delta = slab.wrapping_mul(HOST_SLAB_PER_TENANT);
        TenantSpace {
            did,
            geometry: self.geometry,
            guest: Arc::clone(&self.guest),
            host: self.host.rebased(delta),
            host_slab: slab,
            layout_id: self.layout_id,
            host_delta: delta,
            page_count: self.page_count,
        }
    }

    /// Rough heap footprint of this space's *per-tenant* state — the host
    /// table's sparse maps. The guest table is excluded: it is shared
    /// across every sibling stamped from one canonical build. Used to
    /// convert a host-memory budget into a resident-space cap.
    pub fn per_tenant_bytes(&self) -> u64 {
        // FxHashMap entry ≈ key + value + capacity slack; 64 B/PTE and
        // 16 B/node-address are deliberately generous.
        (self.host.entry_count() as u64) * 64 + (self.host.node_count() as u64) * 16 + 256
    }

    /// Returns the identity of the canonical layout this space shares with
    /// its [`TenantSpaceBuilder::build_many`] siblings.
    ///
    /// Two spaces with the same id have bit-identical guest tables and host
    /// tables that differ only by a uniform [`TenantSpace::host_delta`]
    /// shift — the invariant [`crate::WalkMemo`] relies on to share
    /// functional walk results across tenants.
    pub fn layout_id(&self) -> u64 {
        self.layout_id
    }

    /// Returns the uniform offset of this space's host-side addresses from
    /// the canonical layout's (wrapping arithmetic).
    pub fn host_delta(&self) -> u64 {
        self.host_delta
    }

    /// Returns the guest table (gIOVA → gPA).
    pub fn guest_table(&self) -> &RadixTable {
        &self.guest
    }

    /// Returns the host table (gPA → hPA).
    pub fn host_table(&self) -> &RadixTable {
        &self.host
    }

    /// Walks the guest table for `iova`.
    ///
    /// # Errors
    ///
    /// Returns the guest-table error if `iova` is not device-visible.
    pub fn guest_walk(&self, iova: GIova) -> Result<WalkPath, PageTableError> {
        self.guest.walk(iova.raw())
    }

    /// Walks the host table for `gpa`.
    ///
    /// # Errors
    ///
    /// Returns the host-table error if `gpa` is unmapped (which would be a
    /// builder bug for addresses produced by [`TenantSpace::guest_walk`]).
    pub fn host_walk(&self, gpa: GPa) -> Result<WalkPath, PageTableError> {
        self.host.walk(gpa.raw())
    }

    /// Allocation-free [`TenantSpace::guest_walk`] (the walker's hot path).
    ///
    /// # Errors
    ///
    /// Returns the guest-table error if `iova` is not device-visible.
    pub fn guest_walk_inline(&self, iova: GIova) -> Result<InlineWalkPath, PageTableError> {
        self.guest.walk_inline(iova.raw())
    }

    /// Allocation-free [`TenantSpace::host_walk`] (the walker's hot path).
    ///
    /// # Errors
    ///
    /// Returns the host-table error if `gpa` is unmapped.
    pub fn host_walk_inline(&self, gpa: GPa) -> Result<InlineWalkPath, PageTableError> {
        self.host.walk_inline(gpa.raw())
    }

    /// Full (uncached) functional translation: gIOVA → hPA, with the page
    /// size of the guest leaf.
    pub fn lookup(&self, iova: GIova) -> Option<(HPa, PageSize)> {
        let gpath = self.guest.walk_inline(iova.raw()).ok()?;
        let gpa = gpath.translate(iova.raw());
        let hpa = self.host.translate(gpa)?;
        Some((HPa::new(hpa), gpath.size))
    }
}

impl fmt::Debug for TenantSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantSpace")
            .field("did", &self.did)
            .field("pages", &self.page_count)
            .field("guest_nodes", &self.guest.node_count())
            .field("host_nodes", &self.host.node_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tenant(did: u32) -> TenantSpace {
        let mut b = TenantSpace::builder(Did::new(did));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        for i in 0..32u64 {
            b.map(GIova::new(0xbbe0_0000 + i * 0x20_0000), PageSize::Size2M);
        }
        for i in 0..70u64 {
            b.map(GIova::new(0xf000_0000 + i * 0x1000), PageSize::Size4K);
        }
        b.build()
    }

    #[test]
    fn builds_paper_inventory() {
        let space = paper_tenant(0);
        assert_eq!(space.page_count(), 103);
        assert!(space.lookup(GIova::new(0x3480_0000)).is_some());
        assert!(space
            .lookup(GIova::new(0xbbe0_0000 + 31 * 0x20_0000))
            .is_some());
        assert!(space
            .lookup(GIova::new(0xf000_0000 + 69 * 0x1000))
            .is_some());
        assert!(space.lookup(GIova::new(0xdead_0000)).is_none());
    }

    #[test]
    fn duplicates_collapse() {
        let mut b = TenantSpace::builder(Did::new(0));
        b.map(GIova::new(0x1000), PageSize::Size4K);
        b.map(GIova::new(0x1fff), PageSize::Size4K); // same page
        let space = b.build();
        assert_eq!(space.page_count(), 1);
    }

    #[test]
    fn guest_layout_identical_across_tenants() {
        // Same driver/OS => same gIOVAs *and* same gPAs (§IV-D conflict
        // generator); host frames differ.
        let a = paper_tenant(0);
        let b = paper_tenant(1);
        let iova = GIova::new(0xbbe0_0000);
        let ga = a.guest_walk(iova).unwrap().translate(iova.raw());
        let gb = b.guest_walk(iova).unwrap().translate(iova.raw());
        assert_eq!(ga, gb);
        let (ha, _) = a.lookup(iova).unwrap();
        let (hb, _) = b.lookup(iova).unwrap();
        assert_ne!(ha, hb);
    }

    #[test]
    fn nested_walk_never_faults_on_guest_nodes() {
        let space = paper_tenant(2);
        // Every guest table node must be host-mapped.
        for node in space.guest_table().node_addrs() {
            assert!(
                space.host_walk(GPa::new(node)).is_ok(),
                "guest node {node:#x} not host-mapped"
            );
        }
    }

    #[test]
    fn huge_page_host_frames_are_aligned() {
        let space = paper_tenant(0);
        let (hpa, size) = space.lookup(GIova::new(0xbbe0_0000)).unwrap();
        assert_eq!(size, PageSize::Size2M);
        assert_eq!(hpa.raw() & PageSize::Size2M.offset_mask(), 0);
    }

    #[test]
    fn offsets_survive_translation() {
        let space = paper_tenant(0);
        let base = space.lookup(GIova::new(0xbbe0_0000)).unwrap().0;
        let off = space.lookup(GIova::new(0xbbe0_0000 + 0x1_2345)).unwrap().0;
        assert_eq!(off.raw() - base.raw(), 0x1_2345);
    }

    #[test]
    fn distinct_tenants_have_distinct_host_slabs() {
        let a = paper_tenant(0);
        let b = paper_tenant(1);
        let (ha, _) = a.lookup(GIova::new(0x3480_0000)).unwrap();
        let (hb, _) = b.lookup(GIova::new(0x3480_0000)).unwrap();
        assert!(ha.raw() < 0x10_0000_0000 + HOST_SLAB_PER_TENANT);
        assert!(hb.raw() >= 0x10_0000_0000 + HOST_SLAB_PER_TENANT);
    }

    #[test]
    fn five_level_spaces_translate_identically() {
        let mut b4 = TenantSpace::builder(Did::new(0));
        b4.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        let s4 = b4.build();
        let mut b5 = TenantSpace::builder(Did::new(0));
        b5.levels(5).map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        let s5 = b5.build();
        let iova = GIova::new(0xbbe0_1234);
        // Same functional translation, one extra level in each walk.
        assert_eq!(s4.lookup(iova).unwrap().0, s5.lookup(iova).unwrap().0);
        assert_eq!(
            s4.guest_walk(iova).unwrap().ptes.len() + 1,
            s5.guest_walk(iova).unwrap().ptes.len()
        );
    }

    #[test]
    fn build_many_is_bit_identical_to_per_did_builds() {
        let mut b = TenantSpace::builder(Did::new(0));
        b.map(GIova::new(0x3480_0000), PageSize::Size4K);
        for i in 0..32u64 {
            b.map(GIova::new(0xbbe0_0000 + i * 0x20_0000), PageSize::Size2M);
        }
        for i in 0..70u64 {
            b.map(GIova::new(0xf000_0000 + i * 0x1000), PageSize::Size4K);
        }
        let dids = [Did::new(0), Did::new(1), Did::new(7), Did::new(1023)];
        let fleet = b.build_many(&dids);
        assert_eq!(fleet.len(), dids.len());
        for (space, &did) in fleet.iter().zip(&dids) {
            let mut per = TenantSpace::builder(did);
            per.map(GIova::new(0x3480_0000), PageSize::Size4K);
            for i in 0..32u64 {
                per.map(GIova::new(0xbbe0_0000 + i * 0x20_0000), PageSize::Size2M);
            }
            for i in 0..70u64 {
                per.map(GIova::new(0xf000_0000 + i * 0x1000), PageSize::Size4K);
            }
            let per = per.build();
            assert_eq!(space.did(), per.did());
            assert_eq!(space.page_count(), per.page_count());
            assert_eq!(space.guest_table(), per.guest_table(), "guest table {did}");
            assert_eq!(space.host_table(), per.host_table(), "host table {did}");
        }
    }

    #[test]
    fn build_many_respects_five_levels() {
        let mut b = TenantSpace::builder(Did::new(0));
        b.levels(5).map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        let fleet = b.build_many(&[Did::new(4)]);
        let mut per = TenantSpace::builder(Did::new(4));
        per.levels(5).map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        let per = per.build();
        assert_eq!(fleet[0].host_table(), per.host_table());
        assert_eq!(fleet[0].guest_table(), per.guest_table());
    }

    #[test]
    fn migration_moves_host_frames_and_keeps_guest_layout() {
        let mut space = paper_tenant(0);
        let iova = GIova::new(0xbbe0_0000);
        let (before, size) = space.lookup(iova).unwrap();
        let guest_before = space.guest_walk(iova).unwrap().translate(iova.raw());
        assert_eq!(space.host_slab(), 0);

        space.migrate_to_slab(5);
        assert_eq!(space.host_slab(), 5);
        let (after, size_after) = space.lookup(iova).unwrap();
        assert_eq!(size, size_after);
        assert_eq!(after.raw(), before.raw() + 5 * HOST_SLAB_PER_TENANT);
        // Guest dimension untouched.
        let guest_after = space.guest_walk(iova).unwrap().translate(iova.raw());
        assert_eq!(guest_before, guest_after);

        // Migrating again (including to a lower slab) keeps translating.
        space.migrate_to_slab(2);
        let (back, _) = space.lookup(iova).unwrap();
        assert_eq!(back.raw(), before.raw() + 2 * HOST_SLAB_PER_TENANT);
        // The migrated table is bit-identical to a fresh build at that DID.
        let fresh = paper_tenant(2);
        assert_eq!(space.host_table(), fresh.host_table());
    }

    #[test]
    fn riscv_spaces_translate_like_x86_spaces() {
        // The functional mapping (gIOVA -> hPA) is geometry-independent:
        // only the table shapes (and hence walk costs) differ.
        let mut bx = TenantSpace::builder(Did::new(0));
        bx.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        bx.map(GIova::new(0x3480_0000), PageSize::Size4K);
        let x86 = bx.build();
        for geom in [WalkGeometry::RiscvSv39x4, WalkGeometry::RiscvSv48x4] {
            let mut br = TenantSpace::builder(Did::new(0));
            br.geometry(geom)
                .map(GIova::new(0xbbe0_0000), PageSize::Size2M)
                .map(GIova::new(0x3480_0000), PageSize::Size4K);
            let rv = br.build();
            assert_eq!(rv.geometry(), geom);
            for iova in [GIova::new(0xbbe0_1234), GIova::new(0x3480_0042)] {
                assert_eq!(rv.lookup(iova).unwrap().0, x86.lookup(iova).unwrap().0);
            }
            assert_eq!(
                rv.guest_walk(GIova::new(0x3480_0042)).unwrap().ptes.len(),
                geom.guest_levels() as usize
            );
            assert_eq!(rv.host_table().root_extra_bits(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "overflows its host slab")]
    fn one_gig_device_buffers_exceed_the_slab_model() {
        // 1 GiB leaves are modelled at the table and walker level (see the
        // RadixTable and geometry tests); a 1 GiB *device-visible buffer*
        // cannot be host-backed inside the 256 MiB per-tenant slab, and
        // the builder says so instead of corrupting the layout.
        let mut b = TenantSpace::builder(Did::new(0));
        b.geometry(WalkGeometry::RiscvSv39x4)
            .map(GIova::new(0x8000_0000), PageSize::Size1G);
        let _ = b.build();
    }

    #[test]
    fn riscv_stamping_matches_per_did_builds() {
        for geom in [WalkGeometry::RiscvSv39x4, WalkGeometry::RiscvSv48x4] {
            let mut b = TenantSpace::builder(Did::new(0));
            b.geometry(geom);
            b.map(GIova::new(0x3480_0000), PageSize::Size4K);
            for i in 0..8u64 {
                b.map(GIova::new(0xbbe0_0000 + i * 0x20_0000), PageSize::Size2M);
            }
            let dids = [Did::new(0), Did::new(3), Did::new(511)];
            let fleet = b.build_many(&dids);
            for (space, &did) in fleet.iter().zip(&dids) {
                let mut per = TenantSpace::builder(did);
                per.geometry(geom);
                per.map(GIova::new(0x3480_0000), PageSize::Size4K);
                for i in 0..8u64 {
                    per.map(GIova::new(0xbbe0_0000 + i * 0x20_0000), PageSize::Size2M);
                }
                let per = per.build();
                assert_eq!(space.geometry(), per.geometry());
                assert_eq!(space.guest_table(), per.guest_table(), "guest {geom} {did}");
                assert_eq!(space.host_table(), per.host_table(), "host {geom} {did}");
            }
        }
    }

    #[test]
    fn riscv_migration_keeps_translating() {
        let mut b = TenantSpace::builder(Did::new(0));
        b.geometry(WalkGeometry::RiscvSv48x4)
            .map(GIova::new(0xbbe0_0000), PageSize::Size2M);
        let mut space = b.build();
        let iova = GIova::new(0xbbe0_0042);
        let before = space.lookup(iova).unwrap().0;
        space.migrate_to_slab(9);
        let after = space.lookup(iova).unwrap().0;
        assert_eq!(after.raw(), before.raw() + 9 * HOST_SLAB_PER_TENANT);
        assert_eq!(space.geometry(), WalkGeometry::RiscvSv48x4);
    }

    #[test]
    #[should_panic(expected = "no x86 nested geometry")]
    fn levels_shim_rejects_non_x86_depths() {
        let mut b = TenantSpace::builder(Did::new(0));
        b.levels(3);
    }

    #[test]
    fn debug_mentions_counts() {
        let space = paper_tenant(0);
        let s = format!("{space:?}");
        assert!(s.contains("pages: 103"));
    }
}
