//! Memory-translation substrate for the HyperTRIO/HyperSIO reproduction.
//!
//! This crate builds everything the IOMMU side of the model needs:
//!
//! - [`WalkGeometry`]: the architecture parameterization — guest/host
//!   level counts, G-stage root widening, supported superpage levels — for
//!   x86 nested paging and RISC-V Sv39x4/Sv48x4 two-stage translation.
//! - [`RadixTable`]: a synthetic 3-, 4-, or 5-level radix page table whose
//!   nodes are placed at concrete addresses in their owning address space,
//!   so a walker can enumerate the *exact* memory reads a hardware
//!   page-table walk would perform.
//! - [`TenantSpace`]: one tenant's pair of tables — the guest table
//!   (gIOVA → gPA, its nodes living in guest-physical memory) and the host
//!   table (gPA → hPA) — built from the tenant's page inventory.
//! - [`TwoDimWalker`]: the two-dimensional walk of the paper's Fig 2: every
//!   guest-level PTE read requires a nested host walk, giving 24 memory
//!   accesses for a 4 KB mapping (19 for a 2 MB mapping) on a full miss.
//! - [`WalkCaches`]: the L2/L3 page caches of Table II (partitionable per
//!   Table IV), which let the walker skip upper guest levels.
//! - [`ContextCache`]: BDF → context-entry cache ("CC" in the paper's
//!   Fig 3).
//! - [`Dram`]: fixed-latency DRAM with access accounting.
//! - [`Iommu`]: the assembled translation pipeline with per-request latency
//!   and statistics.
//!
//! # Examples
//!
//! ```
//! use hypersio_mem::{Iommu, IommuParams, TenantSpace};
//! use hypersio_types::{Did, GIova, PageSize, Sid};
//!
//! let mut space = TenantSpace::builder(Did::new(0));
//! space.map(GIova::new(0xbbe0_0000), PageSize::Size2M);
//! let space = space.build();
//!
//! let mut iommu = Iommu::new(IommuParams::paper(), vec![space]);
//! let resp = iommu
//!     .translate(Sid::new(0), Did::new(0), GIova::new(0xbbe0_1234), 0)
//!     .expect("page is mapped");
//! // Context fetch (2 reads) + full two-dimensional walk for a 2 MB page
//! // (19 reads): 21 DRAM accesses in total.
//! assert_eq!(resp.dram_accesses, 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod dram;
mod geometry;
mod iommu;
mod page_table;
mod snapshot;
mod space;
mod space_pool;
mod walk_cache;
mod walker;

pub use context::{ContextCache, ContextEntry};
pub use dram::Dram;
pub use geometry::WalkGeometry;
pub use iommu::{Iommu, IommuParams, IommuResponse, IommuStats, TranslationScheme};
pub use page_table::{InlineWalkPath, PageTableError, Pte, RadixTable, WalkPath};
pub use space::{TenantSpace, TenantSpaceBuilder};
pub use space_pool::{PoolStats, SpacePool};
pub use walk_cache::{NestedKey, WalkCacheConfig, WalkCacheKey, WalkCaches};
pub use walker::{TranslationFault, TwoDimWalker, WalkMemo, WalkOutcome};
