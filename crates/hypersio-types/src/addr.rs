//! Address-space newtypes and page arithmetic.

use std::fmt;
use std::ops::{Add, Sub};

/// Supported page sizes in the translation hierarchy.
///
/// The paper's workloads mix 2 MB huge pages (data buffers, because the L1VM
/// ran with huge pages enabled) and 4 KB pages (NIC initialisation pages), on
/// x86-64 4-level tables that can also map 1 GB pages.
///
/// # Examples
///
/// ```
/// use hypersio_types::PageSize;
///
/// assert_eq!(PageSize::Size4K.bytes(), 4096);
/// assert_eq!(PageSize::Size2M.shift(), 21);
/// assert_eq!(PageSize::Size1G.bytes(), 1 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB page, mapped at page-table level 1.
    Size4K,
    /// 2 MiB huge page, mapped at page-table level 2.
    Size2M,
    /// 1 GiB huge page, mapped at page-table level 3.
    Size1G,
}

impl PageSize {
    /// Returns the page size in bytes.
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// Returns the number of low address bits covered by the page offset.
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Returns the page-table level (1-based) at which this size is mapped.
    ///
    /// Level 1 maps 4 KB pages, level 2 maps 2 MB pages, level 3 maps 1 GB
    /// pages (matching x86-64 radix-512 tables).
    pub const fn level(self) -> u8 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }

    /// Returns the mask selecting the in-page offset bits.
    pub const fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4K"),
            PageSize::Size2M => write!(f, "2M"),
            PageSize::Size1G => write!(f, "1G"),
        }
    }
}

macro_rules! address_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from its raw 64-bit value.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw 64-bit value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the page containing this address at the given size.
            pub const fn page(self, size: PageSize) -> Page<$name> {
                Page {
                    base: $name(self.0 & !size.offset_mask()),
                    size,
                }
            }

            /// Returns the offset of this address within its page.
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & size.offset_mask()
            }

            /// Returns the 9-bit radix index used at page-table `level`
            /// (1 = leaf level for 4K pages, 4 = root for 4-level tables).
            pub const fn level_index(self, level: u8) -> usize {
                ((self.0 >> (12 + 9 * (level as u64 - 1))) & 0x1ff) as usize
            }

            /// Returns the address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics on overflow of the 64-bit address space.
            pub fn checked_add(self, bytes: u64) -> Option<Self> {
                self.0.checked_add(bytes).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;

            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;

            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

address_newtype! {
    /// Guest I/O virtual address: what a tenant's OS hands its device for DMA.
    ///
    /// Every gIOVA must be translated through the two-dimensional walk before
    /// the device can touch host memory. Crucially, *independent tenants
    /// running the same OS/driver allocate the same gIOVAs* (§IV-D), which is
    /// the root cause of DevTLB set conflicts in hyper-tenant systems.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypersio_types::{GIova, PageSize};
    ///
    /// let a = GIova::new(0xbbe0_1000);
    /// assert_eq!(a.page(PageSize::Size2M).base(), GIova::new(0xbbe0_0000));
    /// ```
    GIova
}

address_newtype! {
    /// Guest physical address: the output of the first-level (guest) walk,
    /// and the input of the second-level (host) walk.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypersio_types::GPa;
    ///
    /// assert_eq!(GPa::new(0x1000).level_index(1), 1);
    /// ```
    GPa
}

address_newtype! {
    /// Host physical address: the final product of translation, usable for
    /// actual DRAM access.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypersio_types::HPa;
    ///
    /// assert_eq!((HPa::new(0x2000) + 0x10).raw(), 0x2010);
    /// ```
    HPa
}

/// A page (base address + size) in some address space `A`.
///
/// # Examples
///
/// ```
/// use hypersio_types::{GIova, Page, PageSize};
///
/// let page: Page<GIova> = GIova::new(0x3480_0123).page(PageSize::Size4K);
/// assert_eq!(page.base(), GIova::new(0x3480_0000));
/// assert!(page.contains(GIova::new(0x3480_0fff)));
/// assert!(!page.contains(GIova::new(0x3480_1000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Page<A> {
    base: A,
    size: PageSize,
}

impl<A: Copy + Into<u64> + From<u64>> Page<A> {
    /// Creates a page from a base address and size.
    ///
    /// The base is truncated to the page boundary if not already aligned.
    pub fn new(base: A, size: PageSize) -> Self {
        let raw: u64 = base.into();
        Page {
            base: A::from(raw & !size.offset_mask()),
            size,
        }
    }

    /// Returns the page base address.
    pub fn base(&self) -> A {
        self.base
    }

    /// Returns the page size.
    pub fn size(&self) -> PageSize {
        self.size
    }

    /// Returns true if `addr` falls inside this page.
    pub fn contains(&self, addr: A) -> bool {
        let base: u64 = self.base.into();
        let a: u64 = addr.into();
        a >= base && a < base + self.size.bytes()
    }

    /// Returns the immediately following page of the same size.
    pub fn next(&self) -> Self {
        let base: u64 = self.base.into();
        Page {
            base: A::from(base + self.size.bytes()),
            size: self.size,
        }
    }
}

impl From<GIova> for u64 {
    fn from(a: GIova) -> u64 {
        a.raw()
    }
}

impl From<GPa> for u64 {
    fn from(a: GPa) -> u64 {
        a.raw()
    }
}

impl From<HPa> for u64 {
    fn from(a: HPa) -> u64 {
        a.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes_and_shift_agree() {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            assert_eq!(size.bytes(), 1u64 << size.shift());
            assert_eq!(size.offset_mask(), size.bytes() - 1);
        }
    }

    #[test]
    fn page_size_levels() {
        assert_eq!(PageSize::Size4K.level(), 1);
        assert_eq!(PageSize::Size2M.level(), 2);
        assert_eq!(PageSize::Size1G.level(), 3);
    }

    #[test]
    fn level_index_decomposes_address() {
        // 4-level x86-64: bits [47:39][38:30][29:21][20:12]
        let a = GIova::new((3u64 << 39) | (5u64 << 30) | (7u64 << 21) | (9u64 << 12) | 0xabc);
        assert_eq!(a.level_index(4), 3);
        assert_eq!(a.level_index(3), 5);
        assert_eq!(a.level_index(2), 7);
        assert_eq!(a.level_index(1), 9);
        assert_eq!(a.page_offset(PageSize::Size4K), 0xabc);
    }

    #[test]
    fn page_truncates_unaligned_base() {
        let p = Page::new(GPa::new(0x2345), PageSize::Size4K);
        assert_eq!(p.base(), GPa::new(0x2000));
    }

    #[test]
    fn page_contains_boundaries() {
        let p = GIova::new(0x20_0000).page(PageSize::Size2M);
        assert!(p.contains(GIova::new(0x20_0000)));
        assert!(p.contains(GIova::new(0x3f_ffff)));
        assert!(!p.contains(GIova::new(0x40_0000)));
        assert!(!p.contains(GIova::new(0x1f_ffff)));
    }

    #[test]
    fn page_next_advances_by_size() {
        let p = GIova::new(0).page(PageSize::Size2M);
        assert_eq!(p.next().base(), GIova::new(2 * 1024 * 1024));
    }

    #[test]
    fn address_arithmetic() {
        let a = HPa::new(0x1000);
        assert_eq!((a + 0x234).raw(), 0x1234);
        assert_eq!(HPa::new(0x2000) - a, 0x1000);
        assert_eq!(a.checked_add(u64::MAX), None);
    }

    #[test]
    fn hex_formatting() {
        let a = GIova::new(0xbeef);
        assert_eq!(format!("{a}"), "0xbeef");
        assert_eq!(format!("{a:x}"), "beef");
        assert_eq!(format!("{a:X}"), "BEEF");
    }

    #[test]
    fn page_size_display() {
        assert_eq!(format!("{}", PageSize::Size2M), "2M");
    }
}
