//! Small deterministic pseudo-random number generator.
//!
//! The simulator needs reproducible randomness in a handful of places
//! (tenant working-set strides, random trace interleaving, the RANDOM
//! replacement policy) and the test-suite uses it to generate
//! property-style inputs. A third-party RNG crate would be overkill — and
//! would tie reproducibility of published figures to an external
//! dependency's algorithm — so we carry a tiny
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator in-tree.
//! The stream for a given seed is part of the repo's reproducibility
//! contract: identical seeds yield identical traces, simulations, and
//! figure data on every platform.

/// Deterministic 64-bit pseudo-random number generator (SplitMix64).
///
/// SplitMix64 passes BigCrush, has a full 2^64 period, and is seedable
/// from any `u64` (including 0). It is **not** cryptographically secure —
/// it exists purely to make simulations reproducible.
///
/// # Examples
///
/// ```
/// use hypersio_types::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let roll = a.below(6); // uniform in 0..6
/// assert!(roll < 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`. Every seed (including 0)
    /// yields a distinct, well-mixed stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `0..bound` via Lemire's multiply-shift
    /// reduction (the residual bias is below 2⁻⁶⁴ for the bounds used
    /// here, and — unlike rejection sampling — the draw count per call is
    /// fixed, which keeps streams aligned across platforms).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `usize` index in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns the raw generator state, for checkpointing. The value is
    /// only meaningful to [`SplitMix64::from_state`]; it is not an output
    /// of the stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state captured by
    /// [`SplitMix64::state`], resuming the stream exactly where it left
    /// off.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Returns a uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_stable() {
        // Reference outputs from the canonical splitmix64.c with seed 1.
        let mut rng = SplitMix64::new(1);
        assert_eq!(rng.next_u64(), 0x910a_2dec_8902_5cc1);
        assert_eq!(rng.next_u64(), 0xbeeb_8da1_658e_ec67);
        assert_eq!(rng.next_u64(), 0xf893_a2ee_fb32_555e);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut rng = SplitMix64::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..512 {
            let v = rng.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 13;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_range_inclusive_is_valid() {
        let mut rng = SplitMix64::new(9);
        let _ = rng.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn index_matches_below() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..32 {
            assert_eq!(a.index(17), b.below(17) as usize);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut resumed = SplitMix64::from_state(rng.state());
        for _ in 0..32 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }
}
