//! Minimal multiply-xor hasher for the workspace's internal u64-keyed maps.
//!
//! Several simulator structures sit on the per-packet hot path and are keyed
//! by small synthetic integers — radix-table node/PTE maps, walk-memo tables,
//! stream-ID predictor tables, per-tenant IOVA histories. The standard
//! `HashMap`'s SipHash dominates those probe costs. Keys here are
//! attacker-free synthetic addresses and IDs, so a cheap FxHash-style mix is
//! safe and an order of magnitude faster. No external crates: this is the
//! whole hasher.
//!
//! # Examples
//!
//! ```
//! use hypersio_types::fxhash::FxBuildHasher;
//! use std::collections::HashMap;
//!
//! let mut m: HashMap<u64, u64, FxBuildHasher> = HashMap::default();
//! m.insert(0x1000, 7);
//! assert_eq!(m.get(&0x1000), Some(&7));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// FxHash-style streaming hasher (rotate, xor, multiply per word).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut h = FxHasher::default();
        h.write_u64(0x1000);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write_u64(0x2000);
        assert_ne!(a, h.finish());
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<u64, u64, FxBuildHasher> = HashMap::default();
        for k in 0..1024u64 {
            m.insert(k * 4096, k);
        }
        assert_eq!(m.get(&(7 * 4096)), Some(&7));
        assert_eq!(m.len(), 1024);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        // `write` folds little-endian 8-byte chunks exactly like `write_u64`.
        let mut a = FxHasher::default();
        a.write(&0xdead_beef_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }
}
