//! Bandwidth and byte-count types used for link modelling and reporting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::time::SimDuration;

/// A byte count (payload sizes, totals moved over the link).
///
/// # Examples
///
/// ```
/// use hypersio_types::Bytes;
///
/// let eth_frame = Bytes::new(1542);
/// assert_eq!(eth_frame.bits(), 12336);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Creates a byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Returns the raw byte count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the count in bits.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl From<u64> for Bytes {
    fn from(bytes: u64) -> Self {
        Bytes(bytes)
    }
}

impl Add for Bytes {
    type Output = Bytes;

    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::new(0), Add::add)
    }
}

/// Link bandwidth in bits per second.
///
/// Provides the two computations the simulator needs: the exact
/// inter-arrival time of fixed-size packets on a saturated link, and the
/// achieved-bandwidth calculation for reports.
///
/// # Examples
///
/// ```
/// use hypersio_types::{Bandwidth, Bytes};
///
/// let link = Bandwidth::from_gbps(200);
/// // A 1542 B Ethernet frame (incl. IPG) arrives every 61.68 ns.
/// let gap = link.transfer_time(Bytes::new(1542));
/// assert_eq!(gap.as_ps(), 61_680);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Returns the bandwidth in bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Returns the bandwidth in gigabits per second as a float.
    pub fn gbps(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the time to move `bytes` over this link.
    ///
    /// Computed exactly in picoseconds: `bits * 1e12 / bps`, rounded to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn transfer_time(self, bytes: Bytes) -> SimDuration {
        assert!(self.0 > 0, "transfer_time on a zero-bandwidth link");
        let bits = bytes.bits() as u128;
        let ps = (bits * 1_000_000_000_000u128 + (self.0 as u128) / 2) / self.0 as u128;
        SimDuration::from_ps(ps as u64)
    }

    /// Returns the achieved bandwidth of moving `bytes` in `elapsed` time.
    ///
    /// Returns zero bandwidth for a zero elapsed time (nothing meaningful can
    /// be reported for an instantaneous interval).
    pub fn achieved(bytes: Bytes, elapsed: SimDuration) -> Bandwidth {
        if elapsed.is_zero() {
            return Bandwidth(0);
        }
        let bits = bytes.bits() as u128;
        let bps = bits * 1_000_000_000_000u128 / elapsed.as_ps() as u128;
        Bandwidth(bps as u64)
    }

    /// Returns this bandwidth as a fraction of `nominal` (1.0 = fully
    /// utilized link).
    pub fn utilization_of(self, nominal: Bandwidth) -> f64 {
        if nominal.0 == 0 {
            0.0
        } else {
            self.0 as f64 / nominal.0 as f64
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gb/s", self.gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_gap_at_200g() {
        // §III: "for a 200Gb/s link, a 1500B packet arrives every 62ns";
        // Table II uses 1542B (Eth pkt + IPG) => 61.68ns exactly.
        let gap = Bandwidth::from_gbps(200).transfer_time(Bytes::new(1542));
        assert_eq!(gap.as_ps(), 61_680);
    }

    #[test]
    fn transfer_time_rounds_to_nearest_ps() {
        // 1 byte at 3 bps = 8/3 s = 2.666..e12 ps -> rounds to 2666666666667.
        let t = Bandwidth::from_bps(3).transfer_time(Bytes::new(1));
        assert_eq!(t.as_ps(), 2_666_666_666_667);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn transfer_time_rejects_zero_bandwidth() {
        let _ = Bandwidth::from_bps(0).transfer_time(Bytes::new(1));
    }

    #[test]
    fn achieved_inverts_transfer_time() {
        let link = Bandwidth::from_gbps(100);
        let bytes = Bytes::new(1542 * 1000);
        let t = link.transfer_time(bytes);
        let achieved = Bandwidth::achieved(bytes, t);
        // Within rounding error of one ps per packet.
        assert!((achieved.gbps() - 100.0).abs() < 0.001, "{achieved}");
    }

    #[test]
    fn achieved_zero_elapsed_is_zero() {
        assert_eq!(
            Bandwidth::achieved(Bytes::new(100), SimDuration::ZERO).bps(),
            0
        );
    }

    #[test]
    fn utilization_fraction() {
        let nominal = Bandwidth::from_gbps(200);
        let half = Bandwidth::from_gbps(100);
        assert!((half.utilization_of(nominal) - 0.5).abs() < 1e-12);
        assert_eq!(half.utilization_of(Bandwidth::from_bps(0)), 0.0);
    }

    #[test]
    fn byte_sums() {
        let total: Bytes = (0..3).map(|_| Bytes::new(1542)).sum();
        assert_eq!(total.raw(), 4626);
        assert_eq!(format!("{total}"), "4626B");
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(format!("{}", Bandwidth::from_gbps(200)), "200.00Gb/s");
    }
}
