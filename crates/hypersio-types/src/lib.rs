//! Core identifier, address, time, and bandwidth types shared by every crate
//! in the HyperTRIO/HyperSIO reproduction.
//!
//! The paper's translation pipeline moves several kinds of values around that
//! are all "just integers" at the hardware level but must never be confused
//! with one another: guest I/O virtual addresses ([`GIova`]), guest physical
//! addresses ([`GPa`]), host physical addresses ([`HPa`]), PCIe requester IDs
//! ([`Bdf`] / [`Sid`]), IOMMU domain IDs ([`Did`]), and simulation timestamps
//! ([`SimTime`]). This crate gives each its own newtype so the type system
//! enforces the distinctions (e.g. a DevTLB can only be indexed by a
//! `(Sid, GIova)` pair, and a page-table walk can only return an [`HPa`]).
//!
//! # Examples
//!
//! ```
//! use hypersio_types::{GIova, PageSize, Sid};
//!
//! let sid = Sid::new(7);
//! let iova = GIova::new(0xbbe0_1234);
//! assert_eq!(iova.page(PageSize::Size2M).base().raw(), 0xbbe0_0000);
//! assert_eq!(sid.raw(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod bandwidth;
pub mod fxhash;
mod id;
mod rng;
mod time;

pub use addr::{GIova, GPa, HPa, Page, PageSize};
pub use bandwidth::{Bandwidth, Bytes};
pub use id::{Bdf, Did, Pasid, Sid};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
