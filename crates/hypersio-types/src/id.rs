//! PCIe and IOMMU identifier newtypes.

use std::fmt;

/// PCIe Bus/Device/Function triplet identifying a requester on the fabric.
///
/// In SR-IOV systems each virtual function (VF) appears as its own BDF, so a
/// BDF uniquely identifies a tenant's device endpoint. The packed 16-bit
/// encoding follows PCIe: `bus[15:8] | device[7:3] | function[2:0]`.
///
/// One 16-bit encoding covers a single PCIe segment group (65 536
/// requester IDs). Hyper-tenant setups with more endpoints than that span
/// multiple segment groups, so the full routing identity is 32 bits:
/// `segment[31:16] | bus[15:8] | device[7:3] | function[2:0]`
/// (see [`Bdf::routing_id`]). The 16-bit constructors and accessors keep
/// their segment-0 meaning.
///
/// # Examples
///
/// ```
/// use hypersio_types::Bdf;
///
/// let bdf = Bdf::from_parts(0x3b, 4, 2);
/// assert_eq!(bdf.bus(), 0x3b);
/// assert_eq!(bdf.device(), 4);
/// assert_eq!(bdf.function(), 2);
/// assert_eq!(format!("{bdf}"), "3b:04.2");
///
/// let far = Bdf::from_routing_id(0x0002_3b22);
/// assert_eq!(far.segment(), 2);
/// assert_eq!(format!("{far}"), "0002:3b:04.2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bdf(u32);

impl Bdf {
    /// Creates a segment-0 BDF from its packed 16-bit PCIe encoding.
    pub const fn new(raw: u16) -> Self {
        Bdf(raw as u32)
    }

    /// Creates a BDF from its full 32-bit routing identity (segment group
    /// in the upper 16 bits).
    pub const fn from_routing_id(raw: u32) -> Self {
        Bdf(raw)
    }

    /// Creates a segment-0 BDF from separate bus, device, and function
    /// numbers.
    ///
    /// # Panics
    ///
    /// Panics if `device >= 32` or `function >= 8`, which are unrepresentable
    /// in the PCIe encoding.
    pub fn from_parts(bus: u8, device: u8, function: u8) -> Self {
        assert!(device < 32, "PCIe device number must be < 32");
        assert!(function < 8, "PCIe function number must be < 8");
        Bdf(((bus as u32) << 8) | ((device as u32) << 3) | function as u32)
    }

    /// Returns the packed 16-bit encoding within this BDF's segment group.
    pub const fn raw(self) -> u16 {
        self.0 as u16
    }

    /// Returns the full 32-bit routing identity (segment group + BDF).
    pub const fn routing_id(self) -> u32 {
        self.0
    }

    /// Returns the PCIe segment group (0 for single-segment systems).
    pub const fn segment(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// Returns the bus number.
    pub const fn bus(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// Returns the device number (0..32).
    pub const fn device(self) -> u8 {
        ((self.0 >> 3) & 0x1f) as u8
    }

    /// Returns the function number (0..8).
    pub const fn function(self) -> u8 {
        (self.0 & 0x7) as u8
    }
}

impl fmt::Display for Bdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segment() != 0 {
            write!(f, "{:04x}:", self.segment())?;
        }
        write!(
            f,
            "{:02x}:{:02x}.{:x}",
            self.bus(),
            self.device(),
            self.function()
        )
    }
}

impl From<u16> for Bdf {
    fn from(raw: u16) -> Self {
        Bdf(raw as u32)
    }
}

/// Source ID carried by every translation request reaching the DevTLB.
///
/// The paper uses the SID (assigned by the hypervisor when a VF is given to a
/// tenant) as the partitioning key for the Partitioned DevTLB, because it is
/// stable, tenant-independent, and known at configuration time (§III).
/// Numerically it is the requester's [`Bdf`], but the two are kept as
/// distinct types because SIDs index predictor/partition state while BDFs
/// index the PCIe fabric.
///
/// # Examples
///
/// ```
/// use hypersio_types::Sid;
///
/// let sid = Sid::new(42);
/// // Low-bit group match used by coarse DevTLB partitioning:
/// assert_eq!(sid.low_bits(3), 42 % 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Sid(u32);

impl Sid {
    /// Creates a SID from its raw value.
    pub const fn new(raw: u32) -> Self {
        Sid(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the low `bits` bits of the SID, used for group partition tags.
    ///
    /// `bits == 0` always returns 0 (a single shared group); `bits >= 32`
    /// returns the full SID.
    pub const fn low_bits(self, bits: u32) -> u32 {
        if bits == 0 {
            0
        } else if bits >= 32 {
            self.0
        } else {
            self.0 & ((1 << bits) - 1)
        }
    }
}

impl fmt::Display for Sid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sid{}", self.0)
    }
}

impl From<Bdf> for Sid {
    fn from(bdf: Bdf) -> Self {
        Sid(bdf.routing_id())
    }
}

impl From<u32> for Sid {
    fn from(raw: u32) -> Self {
        Sid(raw)
    }
}

/// IOMMU Domain ID, configured by the host in the tenant's context entry.
///
/// The DID names the second-level (host) address space used for the nested
/// part of the two-dimensional walk, and keys the IOTLB and page-walk caches.
///
/// # Examples
///
/// ```
/// use hypersio_types::Did;
///
/// assert_eq!(Did::new(3).raw(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Did(u32);

impl Did {
    /// Creates a DID from its raw value.
    pub const fn new(raw: u32) -> Self {
        Did(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the DID as a `usize` index into per-domain tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Did {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "did{}", self.0)
    }
}

impl From<u32> for Did {
    fn from(raw: u32) -> Self {
        Did(raw)
    }
}

/// Process Address Space Identifier (optional per-process tag within a SID).
///
/// Carried alongside the SID on translation requests in scalable-IOV setups;
/// the reproduction models one address space per tenant so the PASID is kept
/// for API fidelity but defaults to zero.
///
/// # Examples
///
/// ```
/// use hypersio_types::Pasid;
///
/// assert_eq!(Pasid::default().raw(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pasid(u32);

impl Pasid {
    /// Creates a PASID from its raw value.
    pub const fn new(raw: u32) -> Self {
        Pasid(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pasid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pasid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdf_round_trips_parts() {
        let bdf = Bdf::from_parts(0xff, 31, 7);
        assert_eq!(bdf.bus(), 0xff);
        assert_eq!(bdf.device(), 31);
        assert_eq!(bdf.function(), 7);
    }

    #[test]
    fn bdf_zero_is_default() {
        assert_eq!(Bdf::default(), Bdf::from_parts(0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "device number")]
    fn bdf_rejects_large_device() {
        let _ = Bdf::from_parts(0, 32, 0);
    }

    #[test]
    #[should_panic(expected = "function number")]
    fn bdf_rejects_large_function() {
        let _ = Bdf::from_parts(0, 0, 8);
    }

    #[test]
    fn bdf_display_format() {
        assert_eq!(format!("{}", Bdf::from_parts(1, 2, 3)), "01:02.3");
    }

    #[test]
    fn bdf_routing_id_round_trips_segments() {
        let bdf = Bdf::from_routing_id(0x0007_0103);
        assert_eq!(bdf.segment(), 7);
        assert_eq!(bdf.raw(), 0x0103);
        assert_eq!(bdf.routing_id(), 0x0007_0103);
        assert_eq!(format!("{bdf}"), "0007:01:00.3");
        // Segment-0 construction is unchanged by the widening.
        assert_eq!(Bdf::new(0x0103), Bdf::from_routing_id(0x0103));
        assert_eq!(Sid::from(bdf).raw(), 0x0007_0103);
    }

    #[test]
    fn sid_from_bdf_preserves_raw() {
        let bdf = Bdf::from_parts(2, 1, 0);
        assert_eq!(Sid::from(bdf).raw(), bdf.raw() as u32);
    }

    #[test]
    fn sid_low_bits_edge_cases() {
        let sid = Sid::new(0b1011_0110);
        assert_eq!(sid.low_bits(0), 0);
        assert_eq!(sid.low_bits(1), 0);
        assert_eq!(sid.low_bits(3), 0b110);
        assert_eq!(sid.low_bits(8), 0b1011_0110);
        assert_eq!(sid.low_bits(32), sid.raw());
        assert_eq!(sid.low_bits(40), sid.raw());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Did::new(1));
        set.insert(Did::new(1));
        set.insert(Did::new(2));
        assert_eq!(set.len(), 2);
        assert!(Sid::new(1) < Sid::new(2));
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(format!("{}", Sid::new(9)), "sid9");
        assert_eq!(format!("{}", Did::new(9)), "did9");
        assert_eq!(format!("{}", Pasid::new(9)), "pasid9");
    }
}
