//! Simulation time in picosecond ticks.
//!
//! The performance model mixes latencies spanning four orders of magnitude —
//! 2 ns IOTLB hits, 50 ns DRAM, 450 ns PCIe hops, and 61.68 ns packet
//! inter-arrival at 200 Gb/s. Picosecond integer ticks represent all of them
//! exactly (61.68 ns = 61 680 ps) with no floating-point drift over
//! billion-event simulations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute simulation timestamp (picoseconds since simulation start).
///
/// # Examples
///
/// ```
/// use hypersio_types::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_ns(450);
/// assert_eq!(t.as_ps(), 450_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Returns the timestamp in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the timestamp in nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// Returns the timestamp in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Returns the elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later timestamp"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulation time (picoseconds).
///
/// # Examples
///
/// ```
/// use hypersio_types::SimDuration;
///
/// let pcie = SimDuration::from_ns(450);
/// assert_eq!((pcie * 2).as_ns(), 900);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Returns the duration in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the duration in nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// Returns the duration in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}ns", self.0 / 1000)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimDuration::from_ns(450).as_ps(), 450_000);
        assert_eq!(SimDuration::from_us(2).as_ns(), 2000);
        assert_eq!(SimTime::from_ps(1500).as_ns(), 1);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_ps(100);
        let t1 = t0 + SimDuration::from_ps(50);
        assert_eq!(t1 - t0, SimDuration::from_ps(50));
        assert_eq!(t1.duration_since(t0).as_ps(), 50);
    }

    #[test]
    #[should_panic(expected = "later timestamp")]
    fn duration_since_rejects_reversed_order() {
        let _ = SimTime::from_ps(1).duration_since(SimTime::from_ps(2));
    }

    #[test]
    fn display_prefers_ns_when_exact() {
        assert_eq!(format!("{}", SimDuration::from_ns(50)), "50ns");
        assert_eq!(format!("{}", SimDuration::from_ps(1500)), "1500ps");
    }

    #[test]
    fn sum_and_mul() {
        let total: SimDuration = (0..4).map(|_| SimDuration::from_ns(50)).sum();
        assert_eq!(total, SimDuration::from_ns(50) * 4);
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_ps(5);
        let b = SimTime::from_ps(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn secs_f64_reporting() {
        let one_ms = SimDuration::from_us(1000);
        assert!((one_ms.as_secs_f64() - 1e-3).abs() < 1e-15);
    }
}
