//! Property-based tests for the foundational types.

use hypersio_types::{Bandwidth, Bytes, GIova, PageSize, Sid, SimDuration, SimTime};
use proptest::prelude::*;

fn any_page_size() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        Just(PageSize::Size4K),
        Just(PageSize::Size2M),
        Just(PageSize::Size1G),
    ]
}

proptest! {
    #[test]
    fn page_decomposition_round_trips(
        raw in 0u64..(1 << 48),
        size in any_page_size(),
    ) {
        let addr = GIova::new(raw);
        let page = addr.page(size);
        // base + offset reconstructs the address.
        prop_assert_eq!(page.base().raw() + addr.page_offset(size), raw);
        // The page contains its own address and base.
        prop_assert!(page.contains(addr));
        prop_assert!(page.contains(page.base()));
        // The next page does not.
        prop_assert!(!page.next().contains(addr));
    }

    #[test]
    fn level_indices_reconstruct_addresses(raw in 0u64..(1 << 48)) {
        // 4-level decomposition plus the page offset is lossless.
        let a = GIova::new(raw);
        let rebuilt = ((a.level_index(4) as u64) << 39)
            | ((a.level_index(3) as u64) << 30)
            | ((a.level_index(2) as u64) << 21)
            | ((a.level_index(1) as u64) << 12)
            | a.page_offset(PageSize::Size4K);
        prop_assert_eq!(rebuilt, raw);
    }

    #[test]
    fn sid_low_bits_is_modulo(raw in any::<u32>(), bits in 0u32..40) {
        let sid = Sid::new(raw);
        if bits >= 32 {
            prop_assert_eq!(sid.low_bits(bits), raw);
        } else {
            prop_assert_eq!(sid.low_bits(bits) as u64, raw as u64 % (1u64 << bits));
        }
    }

    #[test]
    fn time_arithmetic_is_consistent(
        start_ps in 0u64..(1 << 50),
        delta_ps in 0u64..(1 << 40),
    ) {
        let t0 = SimTime::from_ps(start_ps);
        let d = SimDuration::from_ps(delta_ps);
        let t1 = t0 + d;
        prop_assert_eq!(t1.duration_since(t0), d);
        prop_assert_eq!(t1 - t0, d);
        prop_assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn transfer_time_inverts_achieved(
        gbps in 1u64..1000,
        packets in 1u64..100_000,
    ) {
        // Moving N packets at the nominal rate and measuring the achieved
        // bandwidth recovers the rate within per-packet rounding.
        let link = Bandwidth::from_gbps(gbps);
        let bytes = Bytes::new(1542 * packets);
        let elapsed = link.transfer_time(bytes);
        let achieved = Bandwidth::achieved(bytes, elapsed);
        let rel = (achieved.gbps() - gbps as f64).abs() / gbps as f64;
        prop_assert!(rel < 1e-6, "relative error {rel}");
    }

    #[test]
    fn transfer_time_is_additive(
        gbps in 1u64..1000,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let link = Bandwidth::from_gbps(gbps);
        let whole = link.transfer_time(Bytes::new(a + b)).as_ps();
        let split =
            link.transfer_time(Bytes::new(a)).as_ps() + link.transfer_time(Bytes::new(b)).as_ps();
        // Within rounding of one picosecond per part.
        prop_assert!(whole.abs_diff(split) <= 1);
    }

    #[test]
    fn utilization_is_ratio(g1 in 1u64..500, g2 in 1u64..500) {
        let a = Bandwidth::from_gbps(g1);
        let b = Bandwidth::from_gbps(g2);
        let u = a.utilization_of(b);
        prop_assert!((u - g1 as f64 / g2 as f64).abs() < 1e-12);
    }
}
