//! Property-style tests for the foundational types.
//!
//! Each test checks the same invariants the original proptest suite did,
//! but over inputs drawn from the in-tree [`SplitMix64`] generator: the
//! case list is deterministic (fixed seeds), so failures reproduce exactly
//! without an external shrinking framework.

use hypersio_types::{Bandwidth, Bytes, GIova, PageSize, Sid, SimDuration, SimTime, SplitMix64};

const CASES: u64 = 512;

fn any_page_size(rng: &mut SplitMix64) -> PageSize {
    match rng.below(3) {
        0 => PageSize::Size4K,
        1 => PageSize::Size2M,
        _ => PageSize::Size1G,
    }
}

#[test]
fn page_decomposition_round_trips() {
    let mut rng = SplitMix64::new(0x1001);
    for _ in 0..CASES {
        let raw = rng.below(1 << 48);
        let size = any_page_size(&mut rng);
        let addr = GIova::new(raw);
        let page = addr.page(size);
        // base + offset reconstructs the address.
        assert_eq!(page.base().raw() + addr.page_offset(size), raw);
        // The page contains its own address and base.
        assert!(page.contains(addr));
        assert!(page.contains(page.base()));
        // The next page does not.
        assert!(!page.next().contains(addr));
    }
}

#[test]
fn level_indices_reconstruct_addresses() {
    let mut rng = SplitMix64::new(0x1002);
    for _ in 0..CASES {
        let raw = rng.below(1 << 48);
        // 4-level decomposition plus the page offset is lossless.
        let a = GIova::new(raw);
        let rebuilt = ((a.level_index(4) as u64) << 39)
            | ((a.level_index(3) as u64) << 30)
            | ((a.level_index(2) as u64) << 21)
            | ((a.level_index(1) as u64) << 12)
            | a.page_offset(PageSize::Size4K);
        assert_eq!(rebuilt, raw);
    }
}

#[test]
fn sid_low_bits_is_modulo() {
    let mut rng = SplitMix64::new(0x1003);
    for _ in 0..CASES {
        let raw = rng.next_u64() as u32;
        let bits = rng.below(40) as u32;
        let sid = Sid::new(raw);
        if bits >= 32 {
            assert_eq!(sid.low_bits(bits), raw);
        } else {
            assert_eq!(sid.low_bits(bits) as u64, raw as u64 % (1u64 << bits));
        }
    }
}

#[test]
fn time_arithmetic_is_consistent() {
    let mut rng = SplitMix64::new(0x1004);
    for _ in 0..CASES {
        let t0 = SimTime::from_ps(rng.below(1 << 50));
        let d = SimDuration::from_ps(rng.below(1 << 40));
        let t1 = t0 + d;
        assert_eq!(t1.duration_since(t0), d);
        assert_eq!(t1 - t0, d);
        assert_eq!(t0.max(t1), t1);
    }
}

#[test]
fn transfer_time_inverts_achieved() {
    let mut rng = SplitMix64::new(0x1005);
    for _ in 0..CASES {
        let gbps = rng.range_inclusive(1, 999);
        let packets = rng.range_inclusive(1, 99_999);
        // Moving N packets at the nominal rate and measuring the achieved
        // bandwidth recovers the rate within per-packet rounding.
        let link = Bandwidth::from_gbps(gbps);
        let bytes = Bytes::new(1542 * packets);
        let elapsed = link.transfer_time(bytes);
        let achieved = Bandwidth::achieved(bytes, elapsed);
        let rel = (achieved.gbps() - gbps as f64).abs() / gbps as f64;
        assert!(rel < 1e-6, "relative error {rel}");
    }
}

#[test]
fn transfer_time_is_additive() {
    let mut rng = SplitMix64::new(0x1006);
    for _ in 0..CASES {
        let gbps = rng.range_inclusive(1, 999);
        let a = rng.below(1_000_000);
        let b = rng.below(1_000_000);
        let link = Bandwidth::from_gbps(gbps);
        let whole = link.transfer_time(Bytes::new(a + b)).as_ps();
        let split =
            link.transfer_time(Bytes::new(a)).as_ps() + link.transfer_time(Bytes::new(b)).as_ps();
        // Within rounding of one picosecond per part.
        assert!(whole.abs_diff(split) <= 1);
    }
}

#[test]
fn utilization_is_ratio() {
    let mut rng = SplitMix64::new(0x1007);
    for _ in 0..CASES {
        let g1 = rng.range_inclusive(1, 499);
        let g2 = rng.range_inclusive(1, 499);
        let a = Bandwidth::from_gbps(g1);
        let b = Bandwidth::from_gbps(g2);
        let u = a.utilization_of(b);
        assert!((u - g1 as f64 / g2 as f64).abs() < 1e-12);
    }
}
