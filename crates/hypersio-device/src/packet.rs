//! Wire sizing of the simulated packets.

use std::fmt;

use hypersio_types::Bytes;

/// A fixed packet size on the wire.
///
/// HyperSIO models full-size Ethernet frames: 1542 bytes on the wire per
/// packet ("Eth Pkt + IPG", Table II), of which 1500 bytes are payload.
///
/// # Examples
///
/// ```
/// use hypersio_device::PacketSpec;
///
/// let pkt = PacketSpec::ethernet();
/// assert_eq!(pkt.wire_bytes().raw(), 1542);
/// assert_eq!(pkt.payload_bytes().raw(), 1500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketSpec {
    wire: Bytes,
    payload: Bytes,
}

impl PacketSpec {
    /// Full-size Ethernet frame: 1500 B payload, 1542 B on the wire
    /// (header + FCS + preamble + inter-packet gap).
    pub fn ethernet() -> Self {
        PacketSpec {
            wire: Bytes::new(1542),
            payload: Bytes::new(1500),
        }
    }

    /// Custom frame sizing.
    ///
    /// # Panics
    ///
    /// Panics if `payload > wire` or `wire` is zero.
    pub fn new(wire: Bytes, payload: Bytes) -> Self {
        assert!(wire.raw() > 0, "wire size must be positive");
        assert!(
            payload.raw() <= wire.raw(),
            "payload cannot exceed wire size"
        );
        PacketSpec { wire, payload }
    }

    /// Bytes occupied on the wire (determines arrival spacing).
    pub const fn wire_bytes(self) -> Bytes {
        self.wire
    }

    /// Payload bytes (determines useful bandwidth).
    pub const fn payload_bytes(self) -> Bytes {
        self.payload
    }

    /// Number of gIOVA translations each packet triggers: ring-buffer
    /// pointer, data buffer, interrupt mailbox (§IV-C).
    pub const fn translations_per_packet(self) -> u32 {
        3
    }
}

impl Default for PacketSpec {
    fn default() -> Self {
        PacketSpec::ethernet()
    }
}

impl fmt::Display for PacketSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B wire/{}B payload",
            self.wire.raw(),
            self.payload.raw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_sizes() {
        let pkt = PacketSpec::ethernet();
        assert_eq!(pkt.wire_bytes().raw(), 1542);
        assert_eq!(pkt.payload_bytes().raw(), 1500);
        assert_eq!(pkt.translations_per_packet(), 3);
        assert_eq!(PacketSpec::default(), pkt);
    }

    #[test]
    fn custom_sizes() {
        let pkt = PacketSpec::new(Bytes::new(100), Bytes::new(60));
        assert_eq!(pkt.wire_bytes().raw(), 100);
    }

    #[test]
    #[should_panic(expected = "payload cannot exceed")]
    fn payload_over_wire_rejected() {
        let _ = PacketSpec::new(Bytes::new(50), Bytes::new(60));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_wire_rejected() {
        let _ = PacketSpec::new(Bytes::new(0), Bytes::new(0));
    }

    #[test]
    fn display_mentions_both() {
        assert_eq!(
            PacketSpec::ethernet().to_string(),
            "1542B wire/1500B payload"
        );
    }
}
