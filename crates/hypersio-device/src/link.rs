//! Saturated-link arrival model.

use std::fmt;

use hypersio_types::{Bandwidth, Bytes, SimDuration, SimTime};

use crate::packet::PacketSpec;

/// A fully-utilised I/O link delivering fixed-size packets back-to-back.
///
/// HyperSIO "calculates the next packet arrival time based on provided I/O
/// link bandwidth and packet size, therefore modeling a fully utilized
/// link" (§IV-C). The link is therefore just an arrival clock; achieved
/// bandwidth is whatever fraction of these arrivals the translation
/// subsystem manages to process.
///
/// # Examples
///
/// ```
/// use hypersio_device::{Link, PacketSpec};
/// use hypersio_types::{Bandwidth, SimTime};
///
/// let link = Link::new(Bandwidth::from_gbps(200), PacketSpec::ethernet());
/// let t1 = link.arrival(1);
/// let t2 = link.arrival(2);
/// assert_eq!((t2 - t1).as_ps(), link.inter_arrival().as_ps());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    bandwidth: Bandwidth,
    packet: PacketSpec,
    gap: SimDuration,
}

impl Link {
    /// Creates a link with the given nominal bandwidth and packet sizing.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn new(bandwidth: Bandwidth, packet: PacketSpec) -> Self {
        let gap = bandwidth.transfer_time(packet.wire_bytes());
        Link {
            bandwidth,
            packet,
            gap,
        }
    }

    /// The paper's evaluation link: 200 Gb/s, Ethernet frames.
    pub fn paper() -> Self {
        Link::new(Bandwidth::from_gbps(200), PacketSpec::ethernet())
    }

    /// Returns the nominal bandwidth.
    pub const fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Returns the packet sizing.
    pub const fn packet(&self) -> PacketSpec {
        self.packet
    }

    /// Returns the time between consecutive packet arrivals.
    pub const fn inter_arrival(&self) -> SimDuration {
        self.gap
    }

    /// Returns the arrival time of packet number `n` (0 arrives at t=0).
    pub fn arrival(&self, n: u64) -> SimTime {
        SimTime::ZERO + self.gap * n
    }

    /// Returns the wire bytes delivered by `packets` packets.
    pub fn bytes_delivered(&self, packets: u64) -> Bytes {
        Bytes::new(self.packet.wire_bytes().raw() * packets)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} link, {}", self.bandwidth, self.packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_link_inter_arrival() {
        // 1542 B at 200 Gb/s: 61.68 ns.
        assert_eq!(Link::paper().inter_arrival().as_ps(), 61_680);
    }

    #[test]
    fn ten_gig_link_is_20x_slower() {
        let link = Link::new(Bandwidth::from_gbps(10), PacketSpec::ethernet());
        assert_eq!(link.inter_arrival().as_ps(), 61_680 * 20);
    }

    #[test]
    fn arrivals_are_evenly_spaced_from_zero() {
        let link = Link::paper();
        assert_eq!(link.arrival(0), SimTime::ZERO);
        assert_eq!(link.arrival(10).as_ps(), 10 * 61_680);
    }

    #[test]
    fn bytes_delivered_scales() {
        let link = Link::paper();
        assert_eq!(link.bytes_delivered(1000).raw(), 1_542_000);
    }

    #[test]
    fn display_is_informative() {
        let s = Link::paper().to_string();
        assert!(s.contains("200.00Gb/s"));
    }
}
