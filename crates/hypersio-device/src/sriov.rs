//! SR-IOV device model: physical functions, virtual functions, and their
//! BDF/SID assignment.
//!
//! The paper's case study (§II-B) uses a dual-port NIC with up to 63 VFs
//! per port, interleaving VF assignment between the two physical functions
//! (PFs). This module models that enumeration: a device exposes PFs at
//! consecutive function numbers, and VFs are placed at the standard SR-IOV
//! offsets above them. The hypervisor-facing API assigns VFs to tenants in
//! PF-interleaved order and yields the Source IDs the translation
//! subsystem will see.

use std::fmt;

use hypersio_types::{Bdf, Sid};

/// An SR-IOV capable device: its PF count and per-PF VF capacity.
///
/// # Examples
///
/// ```
/// use hypersio_device::SriovDevice;
///
/// // The case-study X540: two ports (PFs), 63 VFs each.
/// let nic = SriovDevice::new(0x3b, 2, 63);
/// assert_eq!(nic.total_vfs(), 126);
/// let vf = nic.vf(0, 0); // first VF of PF 0
/// assert_eq!(vf.pf, 0);
/// assert_eq!(nic.sid_of(vf).raw(), vf.bdf.raw() as u32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SriovDevice {
    bus: u8,
    pfs: u8,
    vfs_per_pf: u16,
}

/// One virtual function: its owning PF, index, and requester BDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtualFunction {
    /// Index of the owning physical function.
    pub pf: u8,
    /// VF index within the PF (0-based).
    pub index: u16,
    /// The requester ID this VF presents on the fabric.
    pub bdf: Bdf,
}

/// First routing-ID offset for VFs (standard SR-IOV `First VF Offset`
/// convention: VFs start in the function space above the PFs).
const VF_FIRST_OFFSET: u16 = 8;

impl SriovDevice {
    /// Creates a device on `bus` with `pfs` physical functions exposing
    /// `vfs_per_pf` virtual functions each.
    ///
    /// # Panics
    ///
    /// Panics if `pfs` is zero or greater than 8 (one PCIe device's
    /// function space), or if `vfs_per_pf` is zero.
    pub fn new(bus: u8, pfs: u8, vfs_per_pf: u16) -> Self {
        assert!((1..=8).contains(&pfs), "1..=8 physical functions");
        assert!(vfs_per_pf > 0, "at least one VF per PF");
        SriovDevice {
            bus,
            pfs,
            vfs_per_pf,
        }
    }

    /// Returns the number of physical functions.
    pub fn pfs(&self) -> u8 {
        self.pfs
    }

    /// Returns the VF capacity per PF.
    pub fn vfs_per_pf(&self) -> u16 {
        self.vfs_per_pf
    }

    /// Returns the total VF capacity.
    pub fn total_vfs(&self) -> u32 {
        self.pfs as u32 * self.vfs_per_pf as u32
    }

    /// Returns the BDF of physical function `pf`.
    ///
    /// # Panics
    ///
    /// Panics if `pf` is out of range.
    pub fn pf_bdf(&self, pf: u8) -> Bdf {
        assert!(pf < self.pfs, "PF {pf} out of range");
        Bdf::from_parts(self.bus, 0, pf)
    }

    /// Returns VF `index` of physical function `pf`.
    ///
    /// VFs occupy the routing-ID space above the PFs: VF *i* of PF *p*
    /// lives at function-space slot `VF_FIRST_OFFSET + i * pfs + p`,
    /// spilling into higher device numbers every 8 slots (the standard
    /// ARI-less SR-IOV layout).
    ///
    /// # Panics
    ///
    /// Panics if `pf` or `index` is out of range.
    pub fn vf(&self, pf: u8, index: u16) -> VirtualFunction {
        assert!(pf < self.pfs, "PF {pf} out of range");
        assert!(index < self.vfs_per_pf, "VF {index} out of range");
        let slot = VF_FIRST_OFFSET + index * self.pfs as u16 + pf as u16;
        let device = (slot / 8) as u8;
        let function = (slot % 8) as u8;
        VirtualFunction {
            pf,
            index,
            bdf: Bdf::from_parts(self.bus, device, function),
        }
    }

    /// Returns the Source ID a VF's requests carry (its BDF).
    pub fn sid_of(&self, vf: VirtualFunction) -> Sid {
        Sid::from(vf.bdf)
    }

    /// Assigns `tenants` VFs in PF-interleaved order (tenant 0 → PF 0,
    /// tenant 1 → PF 1, …), as the case study does ("we interleave VFs
    /// between two available PFs").
    ///
    /// # Panics
    ///
    /// Panics if `tenants` exceeds the device's VF capacity.
    pub fn assign_interleaved(&self, tenants: u32) -> Vec<VirtualFunction> {
        assert!(
            tenants <= self.total_vfs(),
            "{tenants} tenants exceed {} VFs",
            self.total_vfs()
        );
        (0..tenants)
            .map(|t| {
                let pf = (t % self.pfs as u32) as u8;
                let index = (t / self.pfs as u32) as u16;
                self.vf(pf, index)
            })
            .collect()
    }
}

impl fmt::Display for SriovDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SR-IOV device bus {:02x}: {} PF(s) x {} VFs",
            self.bus, self.pfs, self.vfs_per_pf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn x540() -> SriovDevice {
        SriovDevice::new(0x3b, 2, 63)
    }

    #[test]
    fn case_study_capacity() {
        assert_eq!(x540().total_vfs(), 126);
        assert_eq!(x540().pfs(), 2);
        assert_eq!(x540().vfs_per_pf(), 63);
    }

    #[test]
    fn pf_bdfs_are_functions_of_device_zero() {
        let nic = x540();
        assert_eq!(nic.pf_bdf(0), Bdf::from_parts(0x3b, 0, 0));
        assert_eq!(nic.pf_bdf(1), Bdf::from_parts(0x3b, 0, 1));
    }

    #[test]
    fn all_vf_bdfs_are_distinct_and_above_pfs() {
        let nic = x540();
        let mut seen = HashSet::new();
        for pf in 0..2u8 {
            for i in 0..63u16 {
                let vf = nic.vf(pf, i);
                assert!(seen.insert(vf.bdf), "duplicate BDF {}", vf.bdf);
                // VFs never collide with PF slots (functions 0..8 of dev 0).
                assert!(vf.bdf.device() > 0 || vf.bdf.function() >= 2);
            }
        }
        assert_eq!(seen.len(), 126);
    }

    #[test]
    fn interleaved_assignment_alternates_pfs() {
        let nic = x540();
        let vfs = nic.assign_interleaved(6);
        let pfs: Vec<u8> = vfs.iter().map(|v| v.pf).collect();
        assert_eq!(pfs, vec![0, 1, 0, 1, 0, 1]);
        // Each tenant gets a unique SID.
        let sids: HashSet<u32> = vfs.iter().map(|v| nic.sid_of(*v).raw()).collect();
        assert_eq!(sids.len(), 6);
    }

    #[test]
    fn interleaved_sids_spread_over_partitions() {
        // Low-bit SID partitioning must not degenerate with BDF packing:
        // consecutive VF slots advance the function number, so an
        // 8-partition DevTLB sees consecutive tenants in distinct groups.
        let nic = x540();
        let vfs = nic.assign_interleaved(16);
        let groups: HashSet<u32> = vfs.iter().map(|v| nic.sid_of(*v).low_bits(3)).collect();
        assert!(groups.len() >= 6, "only {} partition groups", groups.len());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn over_assignment_rejected() {
        let _ = x540().assign_interleaved(127);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vf_index_bounds_checked() {
        let _ = x540().vf(0, 63);
    }

    #[test]
    #[should_panic(expected = "physical functions")]
    fn zero_pfs_rejected() {
        let _ = SriovDevice::new(0, 0, 4);
    }

    #[test]
    fn display_summarises() {
        assert_eq!(x540().to_string(), "SR-IOV device bus 3b: 2 PF(s) x 63 VFs");
    }
}
