//! Descriptor-ring model.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// The ring is full: the descriptor could not be posted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFullError;

impl fmt::Display for RingFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "descriptor ring is full")
    }
}

impl Error for RingFullError {}

/// A bounded descriptor ring, as each tenant's driver posts for its VF.
///
/// The page holding the ring is the paper's group-1 "hottest" page — its
/// pointer is translated on every packet (§IV-D). The ring itself is plain
/// bounded-queue mechanics; it appears in the device model and examples to
/// exercise the same structure the workloads hammer.
///
/// # Examples
///
/// ```
/// use hypersio_device::RingBuffer;
///
/// let mut ring: RingBuffer<u64> = RingBuffer::new(4);
/// ring.post(0xbbe0_0000)?;
/// assert_eq!(ring.consume(), Some(0xbbe0_0000));
/// assert!(ring.is_empty());
/// # Ok::<(), hypersio_device::RingFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    slots: VecDeque<T>,
    capacity: usize,
    posted: u64,
    consumed: u64,
    rejected: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring with `capacity` descriptor slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring must have at least one slot");
        RingBuffer {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            posted: 0,
            consumed: 0,
            rejected: 0,
        }
    }

    /// Returns the slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if no descriptors are posted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns true if no further descriptors can be posted.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Posts a descriptor (producer side: the driver).
    ///
    /// # Errors
    ///
    /// Returns [`RingFullError`] when the ring is full; the descriptor is
    /// returned to the caller by value semantics of the error path (it is
    /// simply not enqueued).
    pub fn post(&mut self, descriptor: T) -> Result<(), RingFullError> {
        if self.is_full() {
            self.rejected += 1;
            return Err(RingFullError);
        }
        self.slots.push_back(descriptor);
        self.posted += 1;
        Ok(())
    }

    /// Consumes the oldest descriptor (consumer side: the device).
    pub fn consume(&mut self) -> Option<T> {
        let d = self.slots.pop_front();
        if d.is_some() {
            self.consumed += 1;
        }
        d
    }

    /// Total descriptors successfully posted.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Total descriptors consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Total post attempts rejected because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut ring = RingBuffer::new(3);
        ring.post(1).unwrap();
        ring.post(2).unwrap();
        assert_eq!(ring.consume(), Some(1));
        assert_eq!(ring.consume(), Some(2));
        assert_eq!(ring.consume(), None);
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut ring = RingBuffer::new(2);
        ring.post('a').unwrap();
        ring.post('b').unwrap();
        assert!(ring.is_full());
        assert_eq!(ring.post('c'), Err(RingFullError));
        assert_eq!(ring.rejected(), 1);
        // Draining makes room again.
        ring.consume();
        ring.post('c').unwrap();
        assert_eq!(ring.posted(), 3);
    }

    #[test]
    fn counters_track_traffic() {
        let mut ring = RingBuffer::new(8);
        for i in 0..5 {
            ring.post(i).unwrap();
        }
        while ring.consume().is_some() {}
        assert_eq!(ring.posted(), 5);
        assert_eq!(ring.consumed(), 5);
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _: RingBuffer<u8> = RingBuffer::new(0);
    }

    #[test]
    fn error_display() {
        assert_eq!(RingFullError.to_string(), "descriptor ring is full");
    }
}
