//! I/O-device substrate for the HyperTRIO/HyperSIO reproduction.
//!
//! Models the device-side plumbing that is *not* part of HyperTRIO's
//! contribution but that the performance model needs:
//!
//! - [`PacketSpec`]: wire sizing of the fixed-size Ethernet frames the
//!   paper simulates (1542 B including the inter-packet gap, Table II).
//! - [`Link`]: a saturated I/O link — packets arrive back-to-back at the
//!   nominal bandwidth, which is how HyperSIO schedules arrivals (§IV-C).
//! - [`Pcie`]: the device ↔ chipset traversal latency (450 ns one-way,
//!   Table II).
//! - [`RingBuffer`]: the descriptor ring whose pointer page is the paper's
//!   group-1 "hottest page" (§IV-D).
//! - [`SriovDevice`]: SR-IOV PF/VF enumeration and the PF-interleaved VF
//!   assignment of the §II case study.
//!
//! # Examples
//!
//! ```
//! use hypersio_device::{Link, PacketSpec};
//! use hypersio_types::Bandwidth;
//!
//! let link = Link::new(Bandwidth::from_gbps(200), PacketSpec::ethernet());
//! assert_eq!(link.inter_arrival().as_ps(), 61_680); // 61.68 ns per frame
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod packet;
mod pcie;
mod ring;
mod sriov;

pub use link::Link;
pub use packet::PacketSpec;
pub use pcie::Pcie;
pub use ring::{RingBuffer, RingFullError};
pub use sriov::{SriovDevice, VirtualFunction};
