//! PCIe traversal latency model.

use std::fmt;

use hypersio_types::SimDuration;

/// The device ↔ chipset PCIe hop.
///
/// Table II charges 450 ns for a one-way PCIe traversal (from the
/// measurements of Neugebauer et al., SIGCOMM 2018, which the paper cites).
/// Every DevTLB miss pays a round trip: the untranslated request travels to
/// the IOMMU and the translated address travels back.
///
/// # Examples
///
/// ```
/// use hypersio_device::Pcie;
///
/// let pcie = Pcie::paper();
/// assert_eq!(pcie.one_way().as_ns(), 450);
/// assert_eq!(pcie.round_trip().as_ns(), 900);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcie {
    one_way: SimDuration,
}

impl Pcie {
    /// Creates a PCIe model with the given one-way latency.
    pub fn new(one_way: SimDuration) -> Self {
        Pcie { one_way }
    }

    /// The paper's Table II latency: 450 ns one-way.
    pub fn paper() -> Self {
        Pcie::new(SimDuration::from_ns(450))
    }

    /// Returns the one-way traversal latency.
    pub const fn one_way(&self) -> SimDuration {
        self.one_way
    }

    /// Returns the request + response round-trip latency.
    pub fn round_trip(&self) -> SimDuration {
        self.one_way * 2
    }
}

impl Default for Pcie {
    fn default() -> Self {
        Pcie::paper()
    }
}

impl fmt::Display for Pcie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCIe {} one-way", self.one_way)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies() {
        assert_eq!(Pcie::paper().one_way().as_ns(), 450);
        assert_eq!(Pcie::paper().round_trip().as_ns(), 900);
        assert_eq!(Pcie::default(), Pcie::paper());
    }

    #[test]
    fn custom_latency() {
        let fast = Pcie::new(SimDuration::from_ns(100));
        assert_eq!(fast.round_trip().as_ns(), 200);
    }

    #[test]
    fn display() {
        assert_eq!(Pcie::paper().to_string(), "PCIe 450ns one-way");
    }
}
