//! Command-line interface for the `hypertrio` binary.
//!
//! Hand-rolled argument parsing (no external dependencies): subcommands
//! with `--flag value` options, each mapping onto the library API.

use std::fmt;

use hypersio_cache::PolicyKind;
use hypersio_sim::{FaultPlan, SimParams, WalkGeometry};
use hypersio_trace::{Interleaving, WorkloadKind};
use hypersio_types::SimDuration;
use hypertrio_core::TranslationConfig;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation and print the report.
    Sim(SimArgs),
    /// Sweep tenant counts and print a bandwidth table.
    Sweep(SimArgs),
    /// Print Table III-style statistics for a trace.
    Trace(SimArgs),
    /// Print the Base and HyperTRIO configuration presets.
    Configs,
    /// Print usage help.
    Help,
}

/// A DevTLB replacement-policy override, fully validated at parse time
/// (so building the configuration can never fail on a policy name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Least-recently-used replacement.
    Lru,
    /// Least-frequently-used replacement.
    Lfu,
    /// First-in-first-out replacement.
    Fifo,
    /// Seeded random replacement (uses the trace seed).
    Random,
}

impl PolicyChoice {
    /// Parses a `--policy` value.
    fn parse(value: &str) -> Option<Self> {
        match value {
            "lru" => Some(PolicyChoice::Lru),
            "lfu" => Some(PolicyChoice::Lfu),
            "fifo" => Some(PolicyChoice::Fifo),
            "random" => Some(PolicyChoice::Random),
            _ => None,
        }
    }
}

/// Options shared by `sim`, `sweep`, and `trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    /// Workload to generate.
    pub workload: WorkloadKind,
    /// Tenant count (the sweep's maximum for `sweep`).
    pub tenants: u32,
    /// Architecture preset: false = Base, true = HyperTRIO.
    pub hypertrio: bool,
    /// Two-stage walk geometry (`--arch`): x86 nested 4-/5-level or
    /// RISC-V Sv39x4/Sv48x4.
    pub arch: WalkGeometry,
    /// Trace-shortening factor.
    pub scale: u64,
    /// Trace seed.
    pub seed: u64,
    /// Interleaving.
    pub interleaving: Interleaving,
    /// DevTLB replacement policy override.
    pub policy: Option<PolicyChoice>,
    /// Warm-up packets excluded from the bandwidth measurement.
    pub warmup: u64,
    /// Worker threads for `sweep` (each sweep point is an independent
    /// simulation; results are bit-identical to a serial sweep) and for
    /// sharded `sim` runs (shards fan out over this many threads; the
    /// merged report is bit-identical for any value).
    pub jobs: usize,
    /// Device-queue shard count for `sim`: DIDs are dealt round-robin
    /// across this many independently simulated queues and the reports
    /// merged deterministically. `1` (the default) is the plain
    /// single-queue run.
    pub shards: u32,
    /// Host-memory budget for resident per-tenant page tables, in MiB.
    /// `None` keeps the historical eager (all-resident) tables.
    pub table_budget_mb: Option<u64>,
    /// Collect per-tenant statistics and print the fairness table (`sim`).
    pub per_tenant: bool,
    /// Write a JSONL event trace to this path (`sim`).
    pub trace_out: Option<String>,
    /// Event-trace ring capacity: the most recent N events are kept.
    pub trace_cap: usize,
    /// Write a windowed time series to this path (`sim`; CSV by default,
    /// JSON when the path ends in `.json`).
    pub timeseries_out: Option<String>,
    /// Time-series window length in simulated microseconds.
    pub window_us: u64,
    /// Write the machine-readable `sim_report/v1` JSON to this path (`sim`).
    pub report_json: Option<String>,
    /// Write per-packet lifecycle spans as Chrome trace-event JSON
    /// (`hypersio-spans/v1`, loadable in Perfetto) to this path (`sim`).
    /// Also attaches the `latency_breakdown` block to the report.
    pub spans_out: Option<String>,
    /// Span ring capacity: the most recent N packet spans are exported
    /// (the latency breakdown always covers every packet).
    pub spans_cap: usize,
    /// Periodic checkpoint cadence in simulated microseconds (`sim`).
    /// Requires `--checkpoint-out`.
    pub checkpoint_every_us: Option<u64>,
    /// Write `hypersio-checkpoint/v1` snapshots to this path (`sim`).
    /// Also arms the SIGINT handler: Ctrl-C stops the run at the next
    /// frame boundary and writes a final checkpoint here.
    pub checkpoint_out: Option<String>,
    /// Resume a `sim` run from a checkpoint file written by
    /// `--checkpoint-out`. The other flags must rebuild the same run
    /// (config, tenants, seed, fault plan, ...); a mismatch is rejected.
    pub resume_from: Option<String>,
    /// Stop gracefully at the first frame boundary at or past this
    /// simulated time (microseconds), exactly as if SIGINT had arrived
    /// there — but deterministically. Requires `--checkpoint-out`.
    pub stop_after_us: Option<u64>,
    /// RSS watchdog limit in MiB (`sim`): when the process grows past
    /// this, re-derivable memory (lazy page-table residency, the walk
    /// memo) is shed. The report is unaffected.
    pub rss_limit_mb: Option<u64>,
    /// Attempts per shard before a panicking worker fails the run
    /// (`sim` with `--shards > 1`); enables shard supervision.
    pub max_shard_attempts: Option<u32>,
    /// Test knob: make this shard panic once on its first attempt, to
    /// exercise supervision end-to-end. Documented, deterministic, and
    /// harmless — the retried run's merged report is bit-identical.
    pub fail_shard: Option<u32>,
    /// Load a declarative `fault_plan/v1` JSON file (`sim`).
    pub fault_plan: Option<String>,
    /// Override/add a periodic global invalidation storm, period in
    /// simulated microseconds (`sim`).
    pub inv_storm_us: Option<u64>,
    /// Override the fraction of pages that start unmapped (`sim`).
    pub fault_rate: Option<f64>,
    /// Override the PRI page-request service latency in microseconds
    /// (`sim`).
    pub pri_latency_us: Option<f64>,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            workload: WorkloadKind::Iperf3,
            tenants: 64,
            hypertrio: true,
            arch: WalkGeometry::X86Nested4,
            scale: 200,
            seed: 0,
            interleaving: Interleaving::round_robin(1),
            policy: None,
            warmup: 1000,
            jobs: default_jobs(),
            shards: 1,
            table_budget_mb: None,
            per_tenant: false,
            trace_out: None,
            trace_cap: 65536,
            timeseries_out: None,
            window_us: 10,
            report_json: None,
            spans_out: None,
            spans_cap: 65536,
            checkpoint_every_us: None,
            checkpoint_out: None,
            resume_from: None,
            stop_after_us: None,
            rss_limit_mb: None,
            max_shard_attempts: None,
            fail_shard: None,
            fault_plan: None,
            inv_storm_us: None,
            fault_rate: None,
            pri_latency_us: None,
        }
    }
}

/// Default worker count: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

impl SimArgs {
    /// Builds the translation configuration these arguments select.
    pub fn config(&self) -> TranslationConfig {
        let mut config = if self.hypertrio {
            TranslationConfig::hypertrio()
        } else {
            TranslationConfig::base()
        };
        if let Some(policy) = self.policy {
            let kind = match policy {
                PolicyChoice::Lru => PolicyKind::Lru,
                PolicyChoice::Lfu => PolicyKind::Lfu,
                PolicyChoice::Fifo => PolicyKind::Fifo,
                PolicyChoice::Random => PolicyKind::Random { seed: self.seed },
            };
            config = config.with_devtlb_policy(kind);
        }
        config
    }

    /// True when any fault-injection input was given on the command line.
    pub fn wants_faults(&self) -> bool {
        self.fault_plan.is_some()
            || self.inv_storm_us.is_some()
            || self.fault_rate.is_some()
            || self.pri_latency_us.is_some()
    }

    /// Assembles the run's [`FaultPlan`]: the loaded plan file (if any,
    /// already parsed by the caller) with the command-line overrides
    /// applied on top. Returns `FaultPlan::none()` untouched when no
    /// fault-injection input was given, so fault-free runs stay
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] when the combined plan fails validation.
    pub fn assemble_fault_plan(
        &self,
        file_plan: Option<FaultPlan>,
    ) -> Result<FaultPlan, ParseError> {
        if !self.wants_faults() {
            return Ok(FaultPlan::none());
        }
        let mut plan = file_plan.unwrap_or_else(|| FaultPlan::none().with_seed(self.seed));
        if let Some(period_us) = self.inv_storm_us {
            plan = plan.with_storm_period(SimDuration::from_us(period_us));
        }
        if let Some(rate) = self.fault_rate {
            plan = plan.with_fault_rate(rate);
        }
        if let Some(latency_us) = self.pri_latency_us {
            plan = plan.with_pri_latency(SimDuration::from_ps((latency_us * 1e6) as u64));
        }
        plan.validate()
            .map_err(|e| ParseError(format!("invalid fault plan: {e}")))?;
        Ok(plan)
    }

    /// Builds the simulator parameters these arguments select.
    pub fn params(&self) -> SimParams {
        let mut params = SimParams::paper()
            .with_arch(self.arch)
            .with_warmup(self.warmup);
        if self.per_tenant {
            params = params.with_per_tenant();
        }
        if let Some(mb) = self.table_budget_mb {
            params = params.with_table_budget(mb << 20);
        }
        params
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `hypertrio help`.
pub const USAGE: &str = "\
hypertrio — HyperTRIO/HyperSIO simulator (ISCA 2020 reproduction)

USAGE:
    hypertrio <COMMAND> [OPTIONS]

COMMANDS:
    sim       run one simulation and print the full report
    sweep     sweep tenant counts (4..TENANTS) and print a bandwidth table
    trace     print Table III-style request statistics for a trace
    configs   print the Base and HyperTRIO presets (Table IV)
    help      print this help

OPTIONS (sim / sweep / trace):
    --workload <iperf3|mediastream|websearch>   workload model  [iperf3]
    --tenants <N>                               tenant count    [64]
    --config <base|hypertrio>                   architecture    [hypertrio]
    --arch <x86-4|x86-5|sv39x4|sv48x4>          walk geometry   [x86-4]
    --scale <N>            divide Table III request counts      [200]
    --seed <N>             trace seed                           [0]
    --interleave <rr1|rr4|rand1>                tenant order    [rr1]
    --policy <lru|lfu|fifo|random>              DevTLB policy   [preset]
    --warmup <N>           packets excluded from measurement    [1000]
    --jobs <N>             worker threads for sweep points and shards
                           (results are identical for any N)    [cores]

SCALE-OUT (sim only; results stay deterministic):
    --shards <N>           deal tenants across N independent device
                           queues, simulated in parallel and merged
                           deterministically (any --jobs value gives a
                           bit-identical merged report)          [1]
    --table-budget-mb <N>  cap resident per-tenant page tables at N MiB;
                           tables build lazily on first touch and are
                           LRU-evicted under the cap (the report is
                           bit-identical to the eager default)

OBSERVABILITY (sim only; no effect on the simulated behaviour):
    --per-tenant           collect per-DID stats + fairness summary
    --report-json <path>   write the machine-readable report (sim_report/v1)
    --trace-out <path>     write a JSONL event trace (hypersio-events/v1)
    --trace-cap <N>        event-trace ring capacity             [65536]
    --timeseries-out <path> write a windowed time series
                           (CSV, or JSON when path ends in .json)
    --window-us <N>        time-series window in simulated us    [10]
    --spans-out <path>     write per-packet lifecycle spans as Chrome
                           trace-event JSON (hypersio-spans/v1; open in
                           Perfetto) and add the latency_breakdown block
                           to the report
    --spans-cap <N>        span ring capacity (most recent N packets
                           exported; the breakdown covers all) [65536]

RESILIENCE (sim only; the report stays bit-identical):
    --checkpoint-out <path>   write hypersio-checkpoint/v1 snapshots here
                              and arm SIGINT: Ctrl-C stops at the next
                              frame boundary and writes a final checkpoint
    --checkpoint-every-us <N> also snapshot every N simulated us
                              (requires --checkpoint-out)
    --stop-after-us <N>       stop gracefully at N simulated us, exactly
                              like a (deterministic) SIGINT; requires
                              --checkpoint-out
    --resume-from <path>      resume an interrupted run; the other flags
                              must rebuild the same run (config, tenants,
                              seed, ...) or the file is rejected. The
                              resumed run replays the remainder exactly:
                              report and event tail are byte-identical to
                              an uninterrupted run
    --rss-limit-mb <N>        shed re-derivable memory (lazy page tables,
                              walk memo) when process RSS exceeds N MiB
    --max-shard-attempts <N>  with --shards > 1: contain a panicking
                              worker and retry its shard up to N times
                              (in-memory checkpoints; merged report is
                              bit-identical to a run that never panicked)
    --fail-shard <S>          test knob: shard S panics once on its first
                              attempt, to exercise supervision end-to-end

FAULT INJECTION (sim only; deterministic, seeded):
    --fault-plan <path>    load a declarative fault_plan/v1 JSON file
    --inv-storm <N>        periodic global shootdown every N simulated us
    --fault-rate <F>       fraction of pages initially unmapped (0.0-1.0)
    --pri-latency-us <F>   PRI page-request service latency in us    [10]
";

/// Parses a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first invalid token.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some("configs") => return Ok(Command::Configs),
        Some(cmd @ ("sim" | "sweep" | "trace")) => cmd.to_string(),
        Some(other) => {
            return Err(ParseError(format!(
                "unknown command {other:?}; try `hypertrio help`"
            )));
        }
    };

    let mut parsed = SimArgs::default();
    while let Some(flag) = it.next() {
        // Boolean flags take no value token.
        if flag == "--per-tenant" {
            parsed.per_tenant = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| ParseError(format!("missing value for {flag}")))?;
        match flag.as_str() {
            "--workload" => {
                parsed.workload = match value.as_str() {
                    "iperf3" => WorkloadKind::Iperf3,
                    "mediastream" => WorkloadKind::Mediastream,
                    "websearch" => WorkloadKind::Websearch,
                    other => return Err(ParseError(format!("unknown workload {other:?}"))),
                };
            }
            "--tenants" => {
                parsed.tenants = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --tenants: {e}")))?;
                if parsed.tenants == 0 {
                    return Err(ParseError("--tenants must be at least 1".into()));
                }
            }
            "--config" => {
                parsed.hypertrio = match value.as_str() {
                    "base" => false,
                    "hypertrio" => true,
                    other => return Err(ParseError(format!("unknown config {other:?}"))),
                };
            }
            "--arch" => {
                parsed.arch = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --arch: {e}")))?;
            }
            "--scale" => {
                parsed.scale = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --scale: {e}")))?;
                if parsed.scale == 0 {
                    return Err(ParseError("--scale must be at least 1".into()));
                }
            }
            "--seed" => {
                parsed.seed = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --seed: {e}")))?;
            }
            "--interleave" => {
                parsed.interleaving = match value.as_str() {
                    "rr1" => Interleaving::round_robin(1),
                    "rr4" => Interleaving::round_robin(4),
                    "rand1" => Interleaving::random(1, parsed.seed),
                    other => return Err(ParseError(format!("unknown interleaving {other:?}"))),
                };
            }
            "--policy" => match PolicyChoice::parse(value) {
                Some(choice) => parsed.policy = Some(choice),
                None => return Err(ParseError(format!("unknown policy {value:?}"))),
            },
            "--warmup" => {
                parsed.warmup = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --warmup: {e}")))?;
            }
            "--jobs" => {
                parsed.jobs = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --jobs: {e}")))?;
                if parsed.jobs == 0 {
                    return Err(ParseError("--jobs must be at least 1".into()));
                }
            }
            "--shards" => {
                parsed.shards = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --shards: {e}")))?;
                if parsed.shards == 0 {
                    return Err(ParseError("--shards must be at least 1".into()));
                }
            }
            "--table-budget-mb" => {
                let mb: u64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --table-budget-mb: {e}")))?;
                if mb == 0 {
                    return Err(ParseError("--table-budget-mb must be at least 1".into()));
                }
                parsed.table_budget_mb = Some(mb);
            }
            "--trace-out" => parsed.trace_out = Some(value.clone()),
            "--trace-cap" => {
                parsed.trace_cap = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --trace-cap: {e}")))?;
                if parsed.trace_cap == 0 {
                    return Err(ParseError("--trace-cap must be at least 1".into()));
                }
            }
            "--timeseries-out" => parsed.timeseries_out = Some(value.clone()),
            "--window-us" => {
                parsed.window_us = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --window-us: {e}")))?;
                if parsed.window_us == 0 {
                    return Err(ParseError("--window-us must be at least 1".into()));
                }
            }
            "--report-json" => parsed.report_json = Some(value.clone()),
            "--spans-out" => parsed.spans_out = Some(value.clone()),
            "--spans-cap" => {
                parsed.spans_cap = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --spans-cap: {e}")))?;
                if parsed.spans_cap == 0 {
                    return Err(ParseError("--spans-cap must be at least 1".into()));
                }
            }
            "--checkpoint-every-us" => {
                let every: u64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --checkpoint-every-us: {e}")))?;
                if every == 0 {
                    return Err(ParseError(
                        "--checkpoint-every-us must be at least 1 (us)".into(),
                    ));
                }
                parsed.checkpoint_every_us = Some(every);
            }
            "--checkpoint-out" => parsed.checkpoint_out = Some(value.clone()),
            "--resume-from" => parsed.resume_from = Some(value.clone()),
            "--stop-after-us" => {
                let at: u64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --stop-after-us: {e}")))?;
                if at == 0 {
                    return Err(ParseError("--stop-after-us must be at least 1 (us)".into()));
                }
                parsed.stop_after_us = Some(at);
            }
            "--rss-limit-mb" => {
                let mb: u64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --rss-limit-mb: {e}")))?;
                if mb == 0 {
                    return Err(ParseError("--rss-limit-mb must be at least 1".into()));
                }
                parsed.rss_limit_mb = Some(mb);
            }
            "--max-shard-attempts" => {
                let attempts: u32 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --max-shard-attempts: {e}")))?;
                if attempts == 0 {
                    return Err(ParseError("--max-shard-attempts must be at least 1".into()));
                }
                parsed.max_shard_attempts = Some(attempts);
            }
            "--fail-shard" => {
                parsed.fail_shard = Some(
                    value
                        .parse()
                        .map_err(|e| ParseError(format!("bad --fail-shard: {e}")))?,
                );
            }
            "--fault-plan" => parsed.fault_plan = Some(value.clone()),
            "--inv-storm" => {
                let period: u64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --inv-storm: {e}")))?;
                if period == 0 {
                    return Err(ParseError("--inv-storm must be at least 1 (us)".into()));
                }
                parsed.inv_storm_us = Some(period);
            }
            "--fault-rate" => {
                let rate: f64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --fault-rate: {e}")))?;
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    return Err(ParseError(
                        "--fault-rate must be a fraction in 0.0 ..= 1.0".into(),
                    ));
                }
                parsed.fault_rate = Some(rate);
            }
            "--pri-latency-us" => {
                let latency: f64 = value
                    .parse()
                    .map_err(|e| ParseError(format!("bad --pri-latency-us: {e}")))?;
                if !latency.is_finite() || !(0.0..=1e9).contains(&latency) {
                    return Err(ParseError(
                        "--pri-latency-us must be a finite non-negative number of us".into(),
                    ));
                }
                parsed.pri_latency_us = Some(latency);
            }
            other => return Err(ParseError(format!("unknown option {other:?}"))),
        }
    }

    // Cross-flag constraints, checked after the loop so flag order never
    // matters.
    if parsed.shards > parsed.tenants {
        return Err(ParseError(format!(
            "--shards {} exceeds --tenants {}: every shard needs at least one tenant",
            parsed.shards, parsed.tenants
        )));
    }
    if parsed.shards > 1 && parsed.wants_faults() {
        return Err(ParseError(
            "fault injection requires a single shard: the injector's schedule \
             covers the full DID population (drop --shards or the fault flags)"
                .into(),
        ));
    }
    if parsed.shards > 1 && parsed.timeseries_out.is_some() {
        return Err(ParseError(
            "--timeseries-out is not supported with --shards > 1: windowed \
             time series are per-queue and have no deterministic merge"
                .into(),
        ));
    }
    if parsed.shards > 1 && parsed.spans_out.is_some() {
        return Err(ParseError(
            "--spans-out is not supported with --shards > 1: span rings are \
             per-queue and have no deterministic merge"
                .into(),
        ));
    }
    if parsed.checkpoint_every_us.is_some() && parsed.checkpoint_out.is_none() {
        return Err(ParseError(
            "--checkpoint-every-us needs --checkpoint-out (where should the \
             snapshots go?)"
                .into(),
        ));
    }
    if parsed.stop_after_us.is_some() && parsed.checkpoint_out.is_none() {
        return Err(ParseError(
            "--stop-after-us needs --checkpoint-out (the stop writes a \
             checkpoint to resume from)"
                .into(),
        ));
    }
    let wants_checkpointing = parsed.checkpoint_out.is_some() || parsed.resume_from.is_some();
    if parsed.shards > 1 && (wants_checkpointing || parsed.rss_limit_mb.is_some()) {
        return Err(ParseError(
            "--checkpoint-out / --resume-from / --rss-limit-mb apply to the \
             single-queue run; with --shards > 1 use --max-shard-attempts \
             (workers checkpoint in memory and retry on their own)"
                .into(),
        ));
    }
    if wants_checkpointing && parsed.timeseries_out.is_some() {
        return Err(ParseError(
            "--timeseries-out cannot be combined with checkpoint/resume: \
             sampler windows are not part of the snapshot, so the resumed \
             series would silently miss the pre-interrupt windows"
                .into(),
        ));
    }
    if wants_checkpointing && parsed.spans_out.is_some() {
        return Err(ParseError(
            "--spans-out cannot be combined with checkpoint/resume: open \
             span state is not part of the snapshot, so resumed spans would \
             be silently incomplete"
                .into(),
        ));
    }
    if parsed.shards == 1 && (parsed.max_shard_attempts.is_some() || parsed.fail_shard.is_some()) {
        return Err(ParseError(
            "--max-shard-attempts / --fail-shard supervise sharded workers; \
             they need --shards > 1"
                .into(),
        ));
    }
    if let Some(shard) = parsed.fail_shard {
        if shard >= parsed.shards {
            return Err(ParseError(format!(
                "--fail-shard {shard} is out of range: shards are 0..{}",
                parsed.shards
            )));
        }
    }

    Ok(match command.as_str() {
        "sim" => Command::Sim(parsed),
        "sweep" => Command::Sweep(parsed),
        "trace" => Command::Trace(parsed),
        _ => unreachable!("command validated above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help_aliases() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("-h")).unwrap(), Command::Help);
    }

    #[test]
    fn defaults_apply() {
        let Command::Sim(args) = parse(&argv("sim")).unwrap() else {
            panic!("expected sim");
        };
        assert_eq!(args, SimArgs::default());
    }

    #[test]
    fn full_option_set_parses() {
        let cmd = parse(&argv(
            "sweep --workload websearch --tenants 256 --config base --scale 50 \
             --seed 9 --interleave rr4 --policy lfu --warmup 500 --jobs 3",
        ))
        .unwrap();
        let Command::Sweep(args) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(args.workload, WorkloadKind::Websearch);
        assert_eq!(args.tenants, 256);
        assert!(!args.hypertrio);
        assert_eq!(args.scale, 50);
        assert_eq!(args.seed, 9);
        assert_eq!(args.interleaving, Interleaving::round_robin(4));
        assert_eq!(args.policy, Some(PolicyChoice::Lfu));
        assert_eq!(args.warmup, 500);
        assert_eq!(args.jobs, 3);
    }

    #[test]
    fn jobs_defaults_to_cores_and_rejects_zero() {
        let Command::Sim(args) = parse(&argv("sim")).unwrap() else {
            panic!("expected sim");
        };
        assert_eq!(args.jobs, default_jobs());
        assert!(args.jobs >= 1);
        let err = parse(&argv("sweep --jobs 0")).unwrap_err();
        assert!(err.0.contains("at least 1"));
    }

    #[test]
    fn rand_interleave_uses_seed() {
        let cmd = parse(&argv("sim --seed 5 --interleave rand1")).unwrap();
        let Command::Sim(args) = cmd else {
            panic!("expected sim");
        };
        assert_eq!(args.interleaving, Interleaving::random(1, 5));
    }

    #[test]
    fn errors_are_descriptive() {
        for (input, needle) in [
            ("frobnicate", "unknown command"),
            ("sim --workload dns", "unknown workload"),
            ("sim --tenants", "missing value"),
            ("sim --tenants x", "bad --tenants"),
            ("sim --tenants 0", "at least 1"),
            ("sim --scale 0", "at least 1"),
            ("sim --config weird", "unknown config"),
            ("sim --arch sv57", "bad --arch"),
            ("sim --arch sv57", "sv39x4"),
            ("sim --arch", "missing value"),
            ("sim --interleave rr9", "unknown interleaving"),
            ("sim --policy belady", "unknown policy"),
            ("sim --frob 1", "unknown option"),
            ("sim --inv-storm 0", "at least 1"),
            ("sim --inv-storm x", "bad --inv-storm"),
            ("sim --fault-rate 1.5", "0.0 ..= 1.0"),
            ("sim --fault-rate NaN", "0.0 ..= 1.0"),
            ("sim --fault-rate x", "bad --fault-rate"),
            ("sim --pri-latency-us -3", "non-negative"),
            ("sim --pri-latency-us inf", "non-negative"),
            ("sim --fault-plan", "missing value"),
        ] {
            let err = parse(&argv(input)).unwrap_err();
            assert!(
                err.0.contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn config_selection_and_policy_override() {
        let Command::Sim(args) = parse(&argv("sim --config base --policy lru")).unwrap() else {
            panic!();
        };
        let config = args.config();
        assert_eq!(config.devtlb_policy.name(), "LRU");
        assert_eq!(config.ptb_entries, 1);
        let Command::Sim(args) = parse(&argv("sim --config hypertrio")).unwrap() else {
            panic!();
        };
        assert_eq!(args.config().ptb_entries, 32);
    }

    #[test]
    fn params_carry_warmup() {
        let Command::Sim(args) = parse(&argv("sim --warmup 42")).unwrap() else {
            panic!();
        };
        assert_eq!(args.params().warmup_packets, 42);
    }

    #[test]
    fn arch_flag_selects_the_geometry() {
        let Command::Sim(args) = parse(&argv("sim")).unwrap() else {
            panic!();
        };
        assert_eq!(args.arch, WalkGeometry::X86Nested4);
        assert_eq!(args.params().walk_geometry, WalkGeometry::X86Nested4);
        for g in WalkGeometry::ALL {
            let line = format!("sim --arch {g}");
            let Command::Sim(args) = parse(&argv(&line)).unwrap() else {
                panic!();
            };
            assert_eq!(args.arch, g);
            assert_eq!(args.params().walk_geometry, g);
        }
    }

    #[test]
    fn observability_flags_parse() {
        let Command::Sim(args) = parse(&argv(
            "sim --per-tenant --trace-out /tmp/ev.jsonl --trace-cap 128 \
             --timeseries-out ts.csv --window-us 5 --report-json out.json \
             --spans-out spans.json --spans-cap 512",
        ))
        .unwrap() else {
            panic!("expected sim");
        };
        assert!(args.per_tenant);
        assert_eq!(args.trace_out.as_deref(), Some("/tmp/ev.jsonl"));
        assert_eq!(args.trace_cap, 128);
        assert_eq!(args.timeseries_out.as_deref(), Some("ts.csv"));
        assert_eq!(args.window_us, 5);
        assert_eq!(args.report_json.as_deref(), Some("out.json"));
        assert_eq!(args.spans_out.as_deref(), Some("spans.json"));
        assert_eq!(args.spans_cap, 512);
        assert!(args.params().per_tenant);
        // Spans off by default.
        assert_eq!(SimArgs::default().spans_out, None);
        assert_eq!(SimArgs::default().spans_cap, 65536);
    }

    #[test]
    fn per_tenant_is_a_bare_flag() {
        // Takes no value: the next token must still be parsed as a flag.
        let Command::Sim(args) = parse(&argv("sim --per-tenant --tenants 8")).unwrap() else {
            panic!("expected sim");
        };
        assert!(args.per_tenant);
        assert_eq!(args.tenants, 8);
        // And off by default (also off in params()).
        assert!(!SimArgs::default().per_tenant);
        assert!(!SimArgs::default().params().per_tenant);
    }

    #[test]
    fn observability_flag_errors() {
        for (input, needle) in [
            ("sim --trace-cap 0", "at least 1"),
            ("sim --window-us 0", "at least 1"),
            ("sim --spans-cap 0", "at least 1"),
            ("sim --spans-cap x", "bad --spans-cap"),
            ("sim --trace-out", "missing value"),
            ("sim --report-json", "missing value"),
            ("sim --spans-out", "missing value"),
        ] {
            let err = parse(&argv(input)).unwrap_err();
            assert!(
                err.0.contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn scale_out_flags_parse_and_wire_params() {
        let Command::Sim(args) =
            parse(&argv("sim --tenants 64 --shards 4 --table-budget-mb 256")).unwrap()
        else {
            panic!("expected sim");
        };
        assert_eq!(args.shards, 4);
        assert_eq!(args.table_budget_mb, Some(256));
        assert_eq!(args.params().table_budget, Some(256 << 20));
        // Defaults: one shard, eager tables.
        assert_eq!(SimArgs::default().shards, 1);
        assert_eq!(SimArgs::default().params().table_budget, None);
    }

    #[test]
    fn scale_out_flag_errors() {
        for (input, needle) in [
            ("sim --shards 0", "at least 1"),
            ("sim --shards x", "bad --shards"),
            ("sim --table-budget-mb 0", "at least 1"),
            ("sim --table-budget-mb x", "bad --table-budget-mb"),
            ("sim --shards 8 --tenants 4", "at least one tenant"),
            ("sim --tenants 4 --shards 8", "at least one tenant"),
            ("sim --shards 2 --fault-rate 0.1", "single shard"),
            ("sim --shards 2 --timeseries-out ts.csv", "not supported"),
            ("sim --shards 2 --spans-out sp.json", "not supported"),
        ] {
            let err = parse(&argv(input)).unwrap_err();
            assert!(
                err.0.contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
        // The constraints are conjunctions: each half alone is fine.
        assert!(parse(&argv("sim --shards 2 --tenants 4")).is_ok());
        assert!(parse(&argv("sim --fault-rate 0.1")).is_ok());
        assert!(parse(&argv("sim --timeseries-out ts.csv")).is_ok());
        assert!(parse(&argv("sim --spans-out sp.json")).is_ok());
    }

    #[test]
    fn resilience_flags_parse() {
        let Command::Sim(args) = parse(&argv(
            "sim --checkpoint-out ck.bin --checkpoint-every-us 500 --rss-limit-mb 2048",
        ))
        .unwrap() else {
            panic!("expected sim");
        };
        assert_eq!(args.checkpoint_out.as_deref(), Some("ck.bin"));
        assert_eq!(args.checkpoint_every_us, Some(500));
        assert_eq!(args.rss_limit_mb, Some(2048));
        let Command::Sim(args) = parse(&argv("sim --resume-from ck.bin")).unwrap() else {
            panic!("expected sim");
        };
        assert_eq!(args.resume_from.as_deref(), Some("ck.bin"));
        let Command::Sim(args) = parse(&argv(
            "sim --shards 4 --max-shard-attempts 2 --fail-shard 3",
        ))
        .unwrap() else {
            panic!("expected sim");
        };
        assert_eq!(args.max_shard_attempts, Some(2));
        assert_eq!(args.fail_shard, Some(3));
        // All off by default: the plain run stays byte-identical.
        let d = SimArgs::default();
        assert_eq!(
            (
                d.checkpoint_every_us,
                d.checkpoint_out,
                d.resume_from,
                d.rss_limit_mb,
                d.max_shard_attempts,
                d.fail_shard
            ),
            (None, None, None, None, None, None)
        );
    }

    #[test]
    fn resilience_flag_errors() {
        for (input, needle) in [
            ("sim --checkpoint-every-us 0", "at least 1"),
            ("sim --checkpoint-every-us x", "bad --checkpoint-every-us"),
            ("sim --checkpoint-every-us 5", "needs --checkpoint-out"),
            ("sim --stop-after-us 0", "at least 1"),
            ("sim --stop-after-us 5", "needs --checkpoint-out"),
            ("sim --rss-limit-mb 0", "at least 1"),
            ("sim --max-shard-attempts 0", "at least 1"),
            ("sim --shards 2 --checkpoint-out c.bin", "single-queue"),
            ("sim --shards 2 --resume-from c.bin", "single-queue"),
            ("sim --shards 2 --rss-limit-mb 64", "single-queue"),
            (
                "sim --checkpoint-out c.bin --timeseries-out t.csv",
                "cannot",
            ),
            ("sim --resume-from c.bin --spans-out s.json", "cannot"),
            ("sim --max-shard-attempts 3", "--shards > 1"),
            ("sim --fail-shard 0", "--shards > 1"),
            ("sim --shards 2 --fail-shard 2", "out of range"),
        ] {
            let err = parse(&argv(input)).unwrap_err();
            assert!(
                err.0.contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
        // Checkpointing composes with the event ring: the resumed tail
        // concatenates with the interrupted head.
        assert!(parse(&argv("sim --checkpoint-out c.bin --trace-out ev.jsonl")).is_ok());
        assert!(parse(&argv("sim --resume-from c.bin --trace-out ev.jsonl")).is_ok());
    }

    #[test]
    fn configs_command() {
        assert_eq!(parse(&argv("configs")).unwrap(), Command::Configs);
    }

    #[test]
    fn fault_flags_parse_and_assemble() {
        let Command::Sim(args) = parse(&argv(
            "sim --seed 7 --inv-storm 50 --fault-rate 0.02 --pri-latency-us 2.5",
        ))
        .unwrap() else {
            panic!("expected sim");
        };
        assert_eq!(args.inv_storm_us, Some(50));
        assert_eq!(args.fault_rate, Some(0.02));
        assert_eq!(args.pri_latency_us, Some(2.5));
        assert!(args.wants_faults());
        let plan = args.assemble_fault_plan(None).unwrap();
        assert!(!plan.is_none());
        assert_eq!(plan.fault_rate, 0.02);
        assert_eq!(plan.storm_period, Some(SimDuration::from_us(50)));
        assert_eq!(plan.pri_latency, SimDuration::from_ps(2_500_000));
        assert_eq!(plan.seed, 7, "plan seed defaults to the trace seed");
    }

    #[test]
    fn no_fault_flags_assemble_to_the_none_plan() {
        let Command::Sim(args) = parse(&argv("sim --seed 9")).unwrap() else {
            panic!("expected sim");
        };
        assert!(!args.wants_faults());
        let plan = args.assemble_fault_plan(None).unwrap();
        assert!(plan.is_none(), "fault-free runs must stay byte-identical");
    }

    #[test]
    fn overrides_apply_on_top_of_a_file_plan() {
        let file = FaultPlan::none().with_fault_rate(0.5).with_seed(99);
        let Command::Sim(args) = parse(&argv("sim --fault-plan p.json --fault-rate 0.1")).unwrap()
        else {
            panic!("expected sim");
        };
        let plan = args.assemble_fault_plan(Some(file)).unwrap();
        assert_eq!(plan.fault_rate, 0.1, "the flag wins over the file");
        assert_eq!(plan.seed, 99, "untouched file fields survive");
    }
}
