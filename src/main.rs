//! The `hypertrio` command-line tool: run simulations, sweeps, and trace
//! statistics from the shell. See [`cli::USAGE`] or `hypertrio help`.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

use hypersio_sim::{
    run_sharded, run_sharded_recorded, sweep_tenants_parallel, write_jsonl_many, FaultPlan,
    RingRecorder, SimReport, Simulation, SpanCollector, SweepSpec, TimeSeriesSampler,
};
use hypersio_trace::HyperTraceBuilder;
use hypertrio::cli::{self, Command, SimArgs};
use hypertrio::error::SimError;
use hypertrio_core::TranslationConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match cli::parse(&args) {
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            Ok(())
        }
        Ok(Command::Configs) => {
            println!("{}", TranslationConfig::base());
            println!("{}", TranslationConfig::hypertrio());
            Ok(())
        }
        Ok(Command::Sim(args)) => run_sim(&args),
        Ok(Command::Sweep(args)) => {
            run_sweep(&args);
            Ok(())
        }
        Ok(Command::Trace(args)) => {
            run_trace(&args);
            Ok(())
        }
        Err(err) => Err(SimError::from(err)),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn trace_builder(args: &SimArgs, tenants: u32, scale: u64) -> HyperTraceBuilder {
    HyperTraceBuilder::new(args.workload, tenants)
        .interleaving(args.interleaving)
        .scale(scale)
        .seed(args.seed)
}

fn build_trace(args: &SimArgs, tenants: u32, scale: u64) -> hypersio_trace::HyperTrace {
    trace_builder(args, tenants, scale).build()
}

/// Loads and parses `--fault-plan` (if given) and layers the command-line
/// overrides on top.
fn load_fault_plan(args: &SimArgs) -> Result<FaultPlan, SimError> {
    let file_plan = match args.fault_plan.as_ref() {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|source| SimError::Io {
                path: path.clone(),
                source,
            })?;
            Some(
                FaultPlan::from_json(&text).map_err(|message| SimError::FaultPlan {
                    path: path.clone(),
                    message,
                })?,
            )
        }
    };
    args.assemble_fault_plan(file_plan).map_err(SimError::from)
}

fn run_sim(args: &SimArgs) -> Result<(), SimError> {
    if args.shards > 1 {
        return run_sim_sharded(args);
    }
    let config = args.config();
    println!("{config}");
    let trace = build_trace(args, args.tenants, args.scale);
    let params = args.params().with_fault_plan(load_fault_plan(args)?);

    // Observers are only constructed when their output was requested, so
    // the default path runs the fully uninstrumented (NullObserver) loop.
    let mut ring = args
        .trace_out
        .as_ref()
        .map(|_| RingRecorder::new(args.trace_cap));
    let mut series = args.timeseries_out.as_ref().map(|_| {
        TimeSeriesSampler::new(
            args.window_us * 1_000_000,
            params.link.bytes_delivered(1).raw(),
            params.link.bandwidth().gbps(),
            config.ptb_entries as u64,
        )
    });

    // The span collector is per-tenant aware only when --per-tenant was
    // given, mirroring the report's own per-tenant gating.
    let mut spans = args.spans_out.as_ref().map(|_| {
        let collector = SpanCollector::new(args.spans_cap);
        if args.per_tenant {
            collector.with_per_tenant()
        } else {
            collector
        }
    });

    let sim = Simulation::new(config, params, trace);
    let mut report = match (ring.as_mut(), series.as_mut(), spans.as_mut()) {
        (None, None, None) => sim.run(),
        (Some(r), None, None) => sim.run_with(r),
        (None, Some(t), None) => sim.run_with(t),
        (None, None, Some(s)) => sim.run_with(s),
        (Some(r), Some(t), None) => sim.run_with(&mut (r, t)),
        (Some(r), None, Some(s)) => sim.run_with(&mut (r, s)),
        (None, Some(t), Some(s)) => sim.run_with(&mut (t, s)),
        (Some(r), Some(t), Some(s)) => sim.run_with(&mut (r, (t, s))),
    };
    // Attach the breakdown before any rendering so the printed report and
    // the JSON file agree.
    if let Some(collector) = spans.as_ref() {
        report.latency_breakdown = Some(collector.attribution().clone());
    }
    println!("{report}");

    if let (Some(path), Some(ring)) = (args.trace_out.as_ref(), ring.as_ref()) {
        write_file(path, |w| ring.write_jsonl(w))?;
        eprintln!(
            "wrote event trace to {path} ({} events, {} overwritten)",
            ring.len(),
            ring.overwritten()
        );
    }
    if let (Some(path), Some(series)) = (args.timeseries_out.as_ref(), series.as_ref()) {
        let body = if path.ends_with(".json") {
            series.to_json()
        } else {
            series.to_csv()
        };
        write_file(path, |w| w.write_all(body.as_bytes()))?;
        eprintln!(
            "wrote time series to {path} ({} windows)",
            series.rows().len()
        );
    }
    if let (Some(path), Some(collector)) = (args.spans_out.as_ref(), spans.as_ref()) {
        write_file(path, |w| collector.write_chrome_trace(w))?;
        eprintln!(
            "wrote packet spans to {path} ({} spans, {} overwritten)",
            collector.len(),
            collector.overwritten()
        );
    }
    if let Some(path) = args.report_json.as_ref() {
        write_file(path, |w| w.write_all(report.to_json().as_bytes()))?;
        eprintln!("wrote report JSON to {path}");
    }
    Ok(())
}

/// The `--shards > 1` path: tenants are dealt round-robin across
/// independent device queues, simulated on `--jobs` worker threads and
/// merged deterministically (the merged report is bit-identical for any
/// `--jobs` value). The parser has already rejected the combinations the
/// shard runner cannot honour (fault injection, time series).
fn run_sim_sharded(args: &SimArgs) -> Result<(), SimError> {
    let config = args.config();
    println!("{config}");
    println!(
        "{} shards x {} worker thread(s)",
        args.shards,
        args.jobs.min(args.shards as usize)
    );
    let params = args.params();
    let builder = trace_builder(args, args.tenants, args.scale);

    let report: SimReport;
    if let Some(path) = args.trace_out.as_ref() {
        let (merged, rings) = run_sharded_recorded(
            &config,
            &params,
            &builder,
            args.shards,
            args.jobs,
            args.trace_cap,
        );
        write_file(path, |w| write_jsonl_many(&rings, w))?;
        let recorded: usize = rings.iter().map(RingRecorder::len).sum();
        let overwritten: u64 = rings.iter().map(RingRecorder::overwritten).sum();
        eprintln!("wrote event trace to {path} ({recorded} events, {overwritten} overwritten)");
        report = merged;
    } else {
        report = run_sharded(&config, &params, &builder, args.shards, args.jobs);
    }
    println!("{report}");

    if let Some(path) = args.report_json.as_ref() {
        write_file(path, |w| w.write_all(report.to_json().as_bytes()))?;
        eprintln!("wrote report JSON to {path}");
    }
    Ok(())
}

/// Writes a file through the closure, mapping I/O failures to [`SimError`].
fn write_file<F>(path: &str, write: F) -> Result<(), SimError>
where
    F: FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
{
    let attempt = || -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write(&mut w)?;
        w.flush()
    };
    attempt().map_err(|source| SimError::Io {
        path: path.to_string(),
        source,
    })
}

fn run_sweep(args: &SimArgs) {
    let config = args.config();
    println!("{config}");
    let spec = SweepSpec::new(args.workload, config, args.scale)
        .with_interleaving(args.interleaving)
        .with_params(args.params())
        .with_seed(args.seed);
    let counts: Vec<u32> = hypersio_sim::PAPER_TENANT_COUNTS
        .into_iter()
        .filter(|&t| t <= args.tenants)
        .collect();
    // Sweep points are independent simulations; the parallel path is
    // bit-identical to a serial sweep for any --jobs value.
    for point in sweep_tenants_parallel(&spec, &counts, args.jobs) {
        println!("{point}");
    }
}

fn run_trace(args: &SimArgs) {
    let trace = build_trace(args, args.tenants, args.scale);
    println!(
        "{} tenants, {} interleaving, scale {}",
        trace.tenants(),
        trace.interleaving(),
        args.scale
    );
    println!("{}", trace.stats());
}
