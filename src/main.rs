//! The `hypertrio` command-line tool: run simulations, sweeps, and trace
//! statistics from the shell. See [`cli::USAGE`] or `hypertrio help`.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

use hypersio_sim::{
    run_sharded, run_sharded_recorded, run_sharded_recorded_supervised, run_sharded_supervised,
    sweep_tenants_parallel, write_jsonl_many, FaultPlan, NullObserver, RingRecorder, RunControl,
    RunOutcome, ShardSupervision, SimReport, Simulation, SpanCollector, SweepSpec,
    TimeSeriesSampler,
};
use hypersio_trace::HyperTraceBuilder;
use hypersio_types::SimDuration;
use hypertrio::cli::{self, Command, SimArgs};
use hypertrio::error::SimError;
use hypertrio_core::TranslationConfig;

/// SIGINT capture for graceful interruption (unix only): the handler just
/// flips an atomic the frame loop polls, so all real work — the checkpoint
/// write — happens on the main thread, outside signal context.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // libc's signal(2); no external crate, no wrapper.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;

    /// Installs the flag-setting handler (replacing default termination).
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    /// True once SIGINT has arrived.
    pub fn pending() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    /// No signal handling off unix: Ctrl-C terminates as usual and the
    /// last periodic checkpoint is the resume point.
    pub fn install() {}

    /// Never true without a handler.
    pub fn pending() -> bool {
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match cli::parse(&args) {
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            Ok(())
        }
        Ok(Command::Configs) => {
            println!("{}", TranslationConfig::base());
            println!("{}", TranslationConfig::hypertrio());
            Ok(())
        }
        Ok(Command::Sim(args)) => run_sim(&args),
        Ok(Command::Sweep(args)) => {
            run_sweep(&args);
            Ok(())
        }
        Ok(Command::Trace(args)) => {
            run_trace(&args);
            Ok(())
        }
        Err(err) => Err(SimError::from(err)),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn trace_builder(args: &SimArgs, tenants: u32, scale: u64) -> HyperTraceBuilder {
    HyperTraceBuilder::new(args.workload, tenants)
        .interleaving(args.interleaving)
        .scale(scale)
        .seed(args.seed)
}

fn build_trace(args: &SimArgs, tenants: u32, scale: u64) -> hypersio_trace::HyperTrace {
    trace_builder(args, tenants, scale).build()
}

/// Loads and parses `--fault-plan` (if given) and layers the command-line
/// overrides on top.
fn load_fault_plan(args: &SimArgs) -> Result<FaultPlan, SimError> {
    let file_plan = match args.fault_plan.as_ref() {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|source| SimError::Io {
                path: path.clone(),
                source,
            })?;
            Some(
                FaultPlan::from_json(&text).map_err(|message| SimError::FaultPlan {
                    path: path.clone(),
                    message,
                })?,
            )
        }
    };
    args.assemble_fault_plan(file_plan).map_err(SimError::from)
}

fn run_sim(args: &SimArgs) -> Result<(), SimError> {
    if args.shards > 1 {
        return run_sim_sharded(args);
    }
    if args.checkpoint_out.is_some() || args.resume_from.is_some() || args.rss_limit_mb.is_some() {
        return run_sim_controlled(args);
    }
    let config = args.config();
    println!("{config}");
    let trace = build_trace(args, args.tenants, args.scale);
    let params = args.params().with_fault_plan(load_fault_plan(args)?);

    // Observers are only constructed when their output was requested, so
    // the default path runs the fully uninstrumented (NullObserver) loop.
    let mut ring = args
        .trace_out
        .as_ref()
        .map(|_| RingRecorder::new(args.trace_cap));
    let mut series = args.timeseries_out.as_ref().map(|_| {
        TimeSeriesSampler::new(
            args.window_us * 1_000_000,
            params.link.bytes_delivered(1).raw(),
            params.link.bandwidth().gbps(),
            config.ptb_entries as u64,
        )
    });

    // The span collector is per-tenant aware only when --per-tenant was
    // given, mirroring the report's own per-tenant gating.
    let mut spans = args.spans_out.as_ref().map(|_| {
        let collector = SpanCollector::new(args.spans_cap);
        if args.per_tenant {
            collector.with_per_tenant()
        } else {
            collector
        }
    });

    let sim = Simulation::new(config, params, trace);
    let mut report = match (ring.as_mut(), series.as_mut(), spans.as_mut()) {
        (None, None, None) => sim.run(),
        (Some(r), None, None) => sim.run_with(r),
        (None, Some(t), None) => sim.run_with(t),
        (None, None, Some(s)) => sim.run_with(s),
        (Some(r), Some(t), None) => sim.run_with(&mut (r, t)),
        (Some(r), None, Some(s)) => sim.run_with(&mut (r, s)),
        (None, Some(t), Some(s)) => sim.run_with(&mut (t, s)),
        (Some(r), Some(t), Some(s)) => sim.run_with(&mut (r, (t, s))),
    };
    // Attach the breakdown before any rendering so the printed report and
    // the JSON file agree.
    if let Some(collector) = spans.as_ref() {
        report.latency_breakdown = Some(collector.attribution().clone());
    }
    println!("{report}");

    if let (Some(path), Some(ring)) = (args.trace_out.as_ref(), ring.as_ref()) {
        write_file(path, |w| ring.write_jsonl(w))?;
        eprintln!(
            "wrote event trace to {path} ({} events, {} overwritten)",
            ring.len(),
            ring.overwritten()
        );
    }
    if let (Some(path), Some(series)) = (args.timeseries_out.as_ref(), series.as_ref()) {
        let body = if path.ends_with(".json") {
            series.to_json()
        } else {
            series.to_csv()
        };
        write_file(path, |w| w.write_all(body.as_bytes()))?;
        eprintln!(
            "wrote time series to {path} ({} windows)",
            series.rows().len()
        );
    }
    if let (Some(path), Some(collector)) = (args.spans_out.as_ref(), spans.as_ref()) {
        write_file(path, |w| collector.write_chrome_trace(w))?;
        eprintln!(
            "wrote packet spans to {path} ({} spans, {} overwritten)",
            collector.len(),
            collector.overwritten()
        );
    }
    if let Some(path) = args.report_json.as_ref() {
        write_file(path, |w| w.write_all(report.to_json().as_bytes()))?;
        eprintln!("wrote report JSON to {path}");
    }
    Ok(())
}

/// The checkpoint/resume path of `sim` (single queue; the parser rejects
/// combinations the controlled loop cannot snapshot). With none of the
/// resilience flags set this function is never reached, so the default
/// path stays byte-identical to earlier versions.
fn run_sim_controlled(args: &SimArgs) -> Result<(), SimError> {
    let config = args.config();
    println!("{config}");
    let trace = build_trace(args, args.tenants, args.scale);
    let params = args.params().with_fault_plan(load_fault_plan(args)?);
    let mut ring = args
        .trace_out
        .as_ref()
        .map(|_| RingRecorder::new(args.trace_cap));

    let mut sim = Simulation::new(config, params, trace);
    if let Some(path) = args.resume_from.as_ref() {
        let bytes = std::fs::read(path).map_err(|source| SimError::Io {
            path: path.clone(),
            source,
        })?;
        sim.resume_from_bytes(&bytes)
            .map_err(|source| SimError::Checkpoint {
                path: path.clone(),
                source,
            })?;
        eprintln!("resumed from checkpoint {path}");
    }

    let ckpt_path = args.checkpoint_out.clone();
    if ckpt_path.is_some() {
        sigint::install();
    }
    let mut sink = |bytes: Vec<u8>| {
        let path = ckpt_path.as_ref().expect("sink armed only with a path");
        if let Err(err) = write_atomically(path, &bytes) {
            // A failed periodic snapshot must not kill a healthy run; the
            // previous checkpoint (if any) is still intact on disk.
            eprintln!("warning: could not write checkpoint {path}: {err}");
        }
    };
    let stop = sigint::pending;
    let mut ctl = RunControl {
        checkpoint_every: args.checkpoint_every_us.map(SimDuration::from_us),
        checkpoint_sink: args.checkpoint_out.is_some().then_some(&mut sink as _),
        stop: args.checkpoint_out.is_some().then_some(&stop as _),
        stop_after: args.stop_after_us.map(SimDuration::from_us),
        rss_limit_bytes: args.rss_limit_mb.map(|mb| mb << 20),
        panic_after_frames: None,
    };
    let outcome = match ring.as_mut() {
        None => sim.run_controlled(&mut NullObserver, &mut ctl),
        Some(r) => sim.run_controlled(r, &mut ctl),
    };

    match outcome {
        RunOutcome::Completed(report) => {
            println!("{report}");
            if let (Some(path), Some(ring)) = (args.trace_out.as_ref(), ring.as_ref()) {
                write_file(path, |w| ring.write_jsonl(w))?;
                eprintln!(
                    "wrote event trace to {path} ({} events, {} overwritten)",
                    ring.len(),
                    ring.overwritten()
                );
            }
            if let Some(path) = args.report_json.as_ref() {
                write_file(path, |w| w.write_all(report.to_json().as_bytes()))?;
                eprintln!("wrote report JSON to {path}");
            }
        }
        RunOutcome::Interrupted { checkpoint } => {
            let path = args
                .checkpoint_out
                .as_ref()
                .expect("interruption is only armed with --checkpoint-out");
            write_atomically(path, &checkpoint).map_err(|source| SimError::Io {
                path: path.clone(),
                source,
            })?;
            // The events recorded so far still go out: together with the
            // resumed run's trace they form exactly the uninterrupted
            // stream (part one ends at the checkpointed frame boundary).
            if let (Some(tpath), Some(ring)) = (args.trace_out.as_ref(), ring.as_ref()) {
                write_file(tpath, |w| ring.write_jsonl(w))?;
                eprintln!(
                    "wrote event trace to {tpath} ({} events, {} overwritten)",
                    ring.len(),
                    ring.overwritten()
                );
            }
            eprintln!(
                "interrupted: checkpoint written to {path}; continue with \
                 --resume-from {path} (and the same run flags)"
            );
        }
    }
    Ok(())
}

/// Writes `bytes` via a temporary file and rename, so an interrupt or
/// crash mid-write can never corrupt the previous checkpoint at `path`.
fn write_atomically(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// The `--shards > 1` path: tenants are dealt round-robin across
/// independent device queues, simulated on `--jobs` worker threads and
/// merged deterministically (the merged report is bit-identical for any
/// `--jobs` value). The parser has already rejected the combinations the
/// shard runner cannot honour (fault injection, time series).
fn run_sim_sharded(args: &SimArgs) -> Result<(), SimError> {
    let config = args.config();
    println!("{config}");
    println!(
        "{} shards x {} worker thread(s)",
        args.shards,
        args.jobs.min(args.shards as usize)
    );
    let params = args.params();
    let builder = trace_builder(args, args.tenants, args.scale);

    // Supervision is armed by either flag; a bare --fail-shard still gets
    // the default retry budget so the injected panic is survivable.
    let supervision = (args.max_shard_attempts.is_some() || args.fail_shard.is_some()).then(|| {
        ShardSupervision {
            max_attempts: args.max_shard_attempts.unwrap_or(3),
            // Workers snapshot in memory at this cadence so a retry
            // resumes mid-shard instead of replaying from the start.
            checkpoint_every: Some(SimDuration::from_us(100)),
            fail_shard_once: args.fail_shard,
        }
    });

    let report: SimReport;
    if let Some(path) = args.trace_out.as_ref() {
        let (merged, rings) = match supervision.as_ref() {
            None => run_sharded_recorded(
                &config,
                &params,
                &builder,
                args.shards,
                args.jobs,
                args.trace_cap,
            )?,
            Some(sup) => run_sharded_recorded_supervised(
                &config,
                &params,
                &builder,
                args.shards,
                args.jobs,
                args.trace_cap,
                sup,
            )?,
        };
        write_file(path, |w| write_jsonl_many(&rings, w))?;
        let recorded: usize = rings.iter().map(RingRecorder::len).sum();
        let overwritten: u64 = rings.iter().map(RingRecorder::overwritten).sum();
        eprintln!("wrote event trace to {path} ({recorded} events, {overwritten} overwritten)");
        report = merged;
    } else {
        report = match supervision.as_ref() {
            None => run_sharded(&config, &params, &builder, args.shards, args.jobs)?,
            Some(sup) => {
                run_sharded_supervised(&config, &params, &builder, args.shards, args.jobs, sup)?
            }
        };
    }
    println!("{report}");

    if let Some(path) = args.report_json.as_ref() {
        write_file(path, |w| w.write_all(report.to_json().as_bytes()))?;
        eprintln!("wrote report JSON to {path}");
    }
    Ok(())
}

/// Writes a file through the closure, mapping I/O failures to [`SimError`].
fn write_file<F>(path: &str, write: F) -> Result<(), SimError>
where
    F: FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
{
    let attempt = || -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write(&mut w)?;
        w.flush()
    };
    attempt().map_err(|source| SimError::Io {
        path: path.to_string(),
        source,
    })
}

fn run_sweep(args: &SimArgs) {
    let config = args.config();
    println!("{config}");
    let spec = SweepSpec::new(args.workload, config, args.scale)
        .with_interleaving(args.interleaving)
        .with_params(args.params())
        .with_seed(args.seed);
    let counts: Vec<u32> = hypersio_sim::PAPER_TENANT_COUNTS
        .into_iter()
        .filter(|&t| t <= args.tenants)
        .collect();
    // Sweep points are independent simulations; the parallel path is
    // bit-identical to a serial sweep for any --jobs value.
    for point in sweep_tenants_parallel(&spec, &counts, args.jobs) {
        println!("{point}");
    }
}

fn run_trace(args: &SimArgs) {
    let trace = build_trace(args, args.tenants, args.scale);
    println!(
        "{} tenants, {} interleaving, scale {}",
        trace.tenants(),
        trace.interleaving(),
        args.scale
    );
    println!("{}", trace.stats());
}
