//! The `hypertrio` command-line tool: run simulations, sweeps, and trace
//! statistics from the shell. See [`cli::USAGE`] or `hypertrio help`.

use std::process::ExitCode;

use hypersio_sim::{sweep_tenants_parallel, Simulation, SweepSpec};
use hypersio_trace::HyperTraceBuilder;
use hypertrio::cli::{self, Command, SimArgs};
use hypertrio_core::TranslationConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Ok(Command::Configs) => {
            println!("{}", TranslationConfig::base());
            println!("{}", TranslationConfig::hypertrio());
            ExitCode::SUCCESS
        }
        Ok(Command::Sim(args)) => {
            run_sim(&args);
            ExitCode::SUCCESS
        }
        Ok(Command::Sweep(args)) => {
            run_sweep(&args);
            ExitCode::SUCCESS
        }
        Ok(Command::Trace(args)) => {
            run_trace(&args);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn build_trace(args: &SimArgs, tenants: u32, scale: u64) -> hypersio_trace::HyperTrace {
    HyperTraceBuilder::new(args.workload, tenants)
        .interleaving(args.interleaving)
        .scale(scale)
        .seed(args.seed)
        .build()
}

fn run_sim(args: &SimArgs) {
    let config = args.config();
    println!("{config}");
    let trace = build_trace(args, args.tenants, args.scale);
    let report = Simulation::new(config, args.params(), trace).run();
    println!("{report}");
}

fn run_sweep(args: &SimArgs) {
    let config = args.config();
    println!("{config}");
    let spec = SweepSpec::new(args.workload, config, args.scale)
        .with_interleaving(args.interleaving)
        .with_params(args.params())
        .with_seed(args.seed);
    let counts: Vec<u32> = hypersio_sim::PAPER_TENANT_COUNTS
        .into_iter()
        .filter(|&t| t <= args.tenants)
        .collect();
    // Sweep points are independent simulations; the parallel path is
    // bit-identical to the serial one for any --jobs value.
    for point in sweep_tenants_parallel(&spec, &counts, args.jobs) {
        println!("{point}");
    }
}

fn run_trace(args: &SimArgs) {
    let trace = build_trace(args, args.tenants, args.scale);
    println!(
        "{} tenants, {} interleaving, scale {}",
        trace.tenants(),
        trace.interleaving(),
        args.scale
    );
    println!("{}", trace.stats());
}
