//! Typed errors for the `hypertrio` binary.
//!
//! Every user-facing failure — bad arguments, unreadable files, malformed
//! fault plans — flows through [`SimError`] and exits with a nonzero code;
//! `main` never panics on bad input.

use std::fmt;

use crate::cli::ParseError;

/// A user-facing failure of the `hypertrio` binary.
#[derive(Debug)]
pub enum SimError {
    /// Invalid command-line arguments.
    Parse(ParseError),
    /// An input or output file could not be read or written.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A fault-plan file was read but could not be parsed or validated.
    FaultPlan {
        /// The plan file's path.
        path: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Parse(err) => write!(f, "{err}"),
            SimError::Io { path, source } => write!(f, "{path}: {source}"),
            SimError::FaultPlan { path, message } => {
                write!(f, "{path}: invalid fault plan: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Parse(err) => Some(err),
            SimError::Io { source, .. } => Some(source),
            SimError::FaultPlan { .. } => None,
        }
    }
}

impl From<ParseError> for SimError {
    fn from(err: ParseError) -> Self {
        SimError::Parse(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_path() {
        let err = SimError::Io {
            path: "plan.json".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(err.to_string().contains("plan.json"));
        let err = SimError::FaultPlan {
            path: "plan.json".into(),
            message: "wrong schema".into(),
        };
        assert!(err.to_string().contains("wrong schema"));
        let err = SimError::from(ParseError("bad --tenants".into()));
        assert_eq!(err.to_string(), "bad --tenants");
    }
}
