//! Typed errors for the `hypertrio` binary.
//!
//! Every user-facing failure — bad arguments, unreadable files, malformed
//! fault plans — flows through [`SimError`] and exits with a nonzero code;
//! `main` never panics on bad input.

use std::fmt;

use crate::cli::ParseError;

/// A user-facing failure of the `hypertrio` binary.
#[derive(Debug)]
pub enum SimError {
    /// Invalid command-line arguments.
    Parse(ParseError),
    /// An input or output file could not be read or written.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A fault-plan file was read but could not be parsed or validated.
    FaultPlan {
        /// The plan file's path.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// A checkpoint file was read but rejected (wrong run, truncated,
    /// corrupt — see [`hypersio_sim::CheckpointError`]).
    Checkpoint {
        /// The checkpoint file's path.
        path: String,
        /// Which validation layer rejected it.
        source: hypersio_sim::CheckpointError,
    },
    /// The sharded runner reported a precondition or supervision failure
    /// (see [`hypersio_sim::SimError`]).
    Run(hypersio_sim::SimError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Parse(err) => write!(f, "{err}"),
            SimError::Io { path, source } => write!(f, "{path}: {source}"),
            SimError::FaultPlan { path, message } => {
                write!(f, "{path}: invalid fault plan: {message}")
            }
            SimError::Checkpoint { path, source } => write!(f, "{path}: {source}"),
            SimError::Run(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Parse(err) => Some(err),
            SimError::Io { source, .. } => Some(source),
            SimError::FaultPlan { .. } => None,
            SimError::Checkpoint { source, .. } => Some(source),
            SimError::Run(err) => Some(err),
        }
    }
}

impl From<ParseError> for SimError {
    fn from(err: ParseError) -> Self {
        SimError::Parse(err)
    }
}

impl From<hypersio_sim::SimError> for SimError {
    fn from(err: hypersio_sim::SimError) -> Self {
        SimError::Run(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_path() {
        let err = SimError::Io {
            path: "plan.json".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(err.to_string().contains("plan.json"));
        let err = SimError::FaultPlan {
            path: "plan.json".into(),
            message: "wrong schema".into(),
        };
        assert!(err.to_string().contains("wrong schema"));
        let err = SimError::from(ParseError("bad --tenants".into()));
        assert_eq!(err.to_string(), "bad --tenants");
        let err = SimError::Checkpoint {
            path: "run.ckpt".into(),
            source: hypersio_sim::CheckpointError::Corrupt,
        };
        assert!(err.to_string().contains("run.ckpt"));
        let err = SimError::from(hypersio_sim::SimError::NoShards);
        assert!(err.to_string().contains("at least one"));
    }
}
