//! # HyperTRIO — Hyper-Tenant Translation of I/O Addresses
//!
//! A from-scratch Rust reproduction of *HyperTRIO: Hyper-Tenant Translation
//! of I/O Addresses* (Lavrov & Wentzlaff, ISCA 2020) together with its
//! evaluation vehicle, the HyperSIO trace-driven device–system performance
//! model.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`types`] — identifier/address/time/bandwidth newtypes.
//! - [`cache`] — set-associative / fully-associative / SID-partitioned
//!   caches with LRU, LFU, FIFO, random, and Belady replacement.
//! - [`mem`] — synthetic guest/host page tables, the two-dimensional
//!   walker, walk caches, context cache, DRAM, and the assembled IOMMU.
//! - [`trace`] — synthetic tenant workloads (iperf3 / mediastream /
//!   websearch), log codec, and the hyper-trace constructor.
//! - [`device`] — packets, saturated link, PCIe, descriptor rings.
//! - [`core`] — the HyperTRIO contribution: Pending Translation Buffer,
//!   partitioned DevTLB, and the translation prefetching scheme.
//! - [`sim`] — the performance model, reports, and experiment sweeps.
//!
//! # Quick start
//!
//! ```
//! use hypertrio::sim::{SimParams, Simulation};
//! use hypertrio::trace::{HyperTraceBuilder, WorkloadKind};
//! use hypertrio::core::TranslationConfig;
//!
//! // 64 tenants of the mediastream workload, round-robin, shortened 2000x.
//! let trace = HyperTraceBuilder::new(WorkloadKind::Mediastream, 64)
//!     .scale(2000)
//!     .build();
//! let report = Simulation::new(
//!     TranslationConfig::hypertrio(),
//!     SimParams::paper(),
//!     trace,
//! )
//! .run();
//! println!("{report}");
//! assert!(report.packets_processed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod error;

pub use hypersio_cache as cache;
pub use hypersio_device as device;
pub use hypersio_mem as mem;
pub use hypersio_sim as sim;
pub use hypersio_trace as trace;
pub use hypersio_types as types;
pub use hypertrio_core as core;
